package solver

import (
	"math"
	"sort"

	"thermosc/internal/mat"
	"thermosc/internal/power"
	"thermosc/internal/sim"
	"thermosc/internal/thermal"
)

// This file is the sparse-backend scale policy: the deterministic pruning
// rules that keep AO/PCO inside interactive deadlines on platforms with
// hundreds of cores, where one exact stable evaluation costs tens of
// milliseconds instead of microseconds.
//
// On the dense backend every trial scan is exhaustive and nothing here
// applies — small platforms keep their historic bit-identical plans. On
// the sparse backend the policy replaces three exhaustive scans:
//
//   - the m-search walks a geometric grid plus a local refinement instead
//     of every integer (searchMSparse);
//   - the TPT/refill/dense-adjust loops evaluate only the top
//     sparseTrialCap candidate cores per iteration, ranked by a
//     steady-state sensitivity proxy (unit responses, one sparse solve
//     per core, computed once per solve);
//   - PCO phase-searches only the sparsePhaseCores cores most strongly
//     coupled to the hot spot, and bounds its refill iterations.
//
// Every rule is a pure function of the model and the candidate specs —
// no timing, no worker count, no randomness — so plans remain
// bit-identical across worker widths and repeated runs, exactly like the
// dense policy. What changes versus an (unaffordably) exhaustive sparse
// scan is only which near-optimal plan the greedy loops settle on; the
// feasibility guarantee is untouched because every accepted step is still
// verified by exact stable evaluation, and the final plan still passes
// the dense verification sweep.
const (
	// sparseTrialCap is the number of candidate cores each TPT/refill/
	// dense-adjust iteration evaluates on the sparse backend.
	sparseTrialCap = 8
	// sparsePhaseCores bounds how many cores PCO phase-searches.
	sparsePhaseCores = 4
	// sparseRefillIters bounds the AO headroom-refill iterations.
	sparseRefillIters = 16
	// sparsePCORefillIters bounds PCO's dense-verified refill iterations
	// (each costs sparseTrialCap dense-sampled evaluations).
	sparsePCORefillIters = 8
	// sparseMGridRatio is the geometric step of the sparse m-search grid.
	sparseMGridRatio = 1.4
	// sparseSeedSafety shrinks the duty-cycle seed of below-minimum ideal
	// voltages (see sparseSeedSpecs): static power is convex in voltage
	// with ψ(0) = 0, so the voltage-linear duty RH = v/vmin burns at least
	// the ideal power — the safety margin keeps the seed on the feasible
	// side so the (per-quantum, expensive-at-scale) TPT reduction starts
	// converged and the bounded refill climbs from below.
	sparseSeedSafety = 0.85
	// sparseSeedBisects is the bisection depth of the feasibility backoff
	// (resolution 2^-12 on the voltage scale factor).
	sparseSeedBisects = 12
	// sparseSeedMargin (K) is how far below the budget the backoff aims:
	// it absorbs the peak shift when the m-search later moves the
	// oscillation count away from the m=1 probe, so the TPT reduction
	// rarely has distance to cover.
	sparseSeedMargin = 0.5
)

// scalePolicy carries the precomputed sensitivity proxy of one sparse
// solve. nil (dense backend, or few enough cores) means exhaustive scans.
type scalePolicy struct {
	md *thermal.Model
	ur *mat.Dense // dim×n steady unit responses: ur[node][core] K/W
	// scratch of the ranking (reused across iterations)
	idx   []int
	score []float64
}

// newScalePolicy returns the pruning policy for md, or nil when the model
// runs densely or is small enough to scan exhaustively.
func newScalePolicy(md *thermal.Model) *scalePolicy {
	if !md.SparsePath() || md.NumCores() <= sparseTrialCap {
		return nil
	}
	n := md.NumCores()
	return &scalePolicy{
		md:    md,
		ur:    md.UnitResponses(),
		idx:   make([]int, 0, n),
		score: make([]float64, n),
	}
}

// deltaPower is core j's static-power swing between its two modes,
// scaled to the physical core — the magnitude knob of every sensitivity
// score.
func (sp *scalePolicy) deltaPower(specs []coreSpec, j int) float64 {
	pm := sp.md.Power()
	c := specs[j]
	return sp.md.CoreScale(j) * (pm.Static(c.High) - pm.Static(c.Low))
}

// topBy fills sp.idx with up to cap eligible cores ranked by descending
// score (ties to the smaller index — the sequential scan's preference).
// The returned slice aliases sp.idx and is valid until the next ranking.
func (sp *scalePolicy) topBy(specs []coreSpec, cap int, eligible func(int) bool, score func(int) float64) []int {
	sp.idx = sp.idx[:0]
	for j := range specs {
		if !eligible(j) {
			continue
		}
		sp.score[j] = score(j)
		sp.idx = append(sp.idx, j)
	}
	sort.SliceStable(sp.idx, func(a, b int) bool {
		ia, ib := sp.idx[a], sp.idx[b]
		if sp.score[ia] != sp.score[ib] {
			return sp.score[ia] > sp.score[ib]
		}
		return ia < ib
	})
	if len(sp.idx) > cap {
		sp.idx = sp.idx[:cap]
	}
	return sp.idx
}

// coolers ranks the cores whose slowdown most plausibly cools the hot
// node: coupling ur[hot][j] times the power swing — the first-order
// steady-state effect of trimming core j's high ratio.
func (sp *scalePolicy) coolers(hot int, specs []coreSpec, eligible func(int) bool) []int {
	return sp.topBy(specs, sparseTrialCap, eligible, func(j int) float64 {
		return sp.ur.At(hot, j) * sp.deltaPower(specs, j)
	})
}

// refillers ranks the cores with the best throughput gain per unit of
// predicted heating of the hot node — the refill loop's own score, with
// the exact trial peak replaced by the steady sensitivity proxy.
func (sp *scalePolicy) refillers(hot int, specs []coreSpec, eligible func(int) bool) []int {
	return sp.topBy(specs, sparseTrialCap, eligible, func(j int) float64 {
		gain := specs[j].High.Voltage - specs[j].Low.Voltage
		heat := sp.ur.At(hot, j) * sp.deltaPower(specs, j)
		return gain / math.Max(heat, 1e-12)
	})
}

// phaseCores ranks the oscillating cores most strongly coupled to the hot
// node — the ones whose phase shift moves the most heat away from the
// peak — and returns a membership mask over all cores.
func (sp *scalePolicy) phaseCores(hot int, specs []coreSpec) []bool {
	top := sp.topBy(specs, sparsePhaseCores, func(j int) bool {
		return specs[j].oscillating()
	}, func(j int) float64 {
		return sp.ur.At(hot, j) * sp.deltaPower(specs, j)
	})
	mask := make([]bool, len(specs))
	for _, j := range top {
		mask[j] = true
	}
	return mask
}

// sparseSeedSpecs rewrites the ideal-pinned seed for the sparse backend:
// neighborSpecs deliberately clamps a below-minimum ideal voltage to the
// CONSTANT lowest level (RH = 1), relying on the TPT reduction to cut it
// back — cheap on small dense platforms, but at hundreds of cores that
// recovery costs tens of thousands of one-quantum iterations (each a
// multi-millisecond exact evaluation). Here the off↔min oscillation
// starts at eq. (11)'s own voltage-linear duty cycle RH = v/vmin instead,
// shrunk by sparseSeedSafety, so the seed lands near-feasible and the
// adjustment loops only fine-tune.
func sparseSeedSpecs(specs []coreSpec, volts []float64, levels *power.LevelSet) {
	vmin := levels.Min()
	for i := range specs {
		c := &specs[i]
		if !c.Low.IsOff() || c.High.IsOff() || c.RH != 1 {
			continue
		}
		if volts[i] <= 0 || volts[i] >= vmin {
			continue
		}
		c.RH = sparseSeedSafety * volts[i] / vmin
	}
}

// sparseFeasibleSeed turns the ideal continuous voltages into a
// near-feasible starting point for the sparse backend. The ideal-pinned
// solve assumes EVERY core's steady temperature sits exactly at Tmax;
// on dense platforms that is mildly optimistic and the TPT reduction
// cleans it up, but on large thermally-constrained platforms many ideal
// voltages come out non-positive — the solve effectively budgeted
// negative power (active cooling) for those cores, so the remaining
// voltages can be infeasible by hundreds of Kelvin, a distance the
// one-quantum-per-iteration TPT loop cannot cover at multi-millisecond
// evaluation cost. Instead, bisect a global scale factor s on the
// (clamped-to-zero) ideal voltage vector: s = 0 is all-off and trivially
// feasible, and each probe is ONE exact stable evaluation of the m=1
// cycle. The returned specs are feasible at the probe within
// sparseSeedMargin, leaving the adjustment loops only fine-tuning.
func sparseFeasibleSeed(p Problem, eng *sim.Engine, volts []float64) ([]coreSpec, error) {
	scaled := func(s float64) []coreSpec {
		vs := make([]float64, len(volts))
		for i, v := range volts {
			vs[i] = s * math.Max(0, v)
		}
		specs := neighborSpecs(p.Levels, vs, !p.DisallowOff)
		sparseSeedSpecs(specs, vs, p.Levels)
		return specs
	}
	probe := func(specs []coreSpec) (float64, error) {
		cyc, err := buildCycle(p.BasePeriod, specs, p.Overhead, cycleThermal)
		if err != nil {
			return math.Inf(1), err
		}
		pk, _, err := eng.StepUpPeak(cyc)
		return pk, err
	}
	target := p.tmaxRise() - sparseSeedMargin
	specs := scaled(1)
	pk, err := probe(specs)
	if err != nil {
		return nil, err
	}
	if pk <= target {
		return specs, nil
	}
	// Invariant: lo is feasible (s=0 is all-off, peak 0), hi is not.
	lo, hi := 0.0, 1.0
	best := scaled(0)
	for iter := 0; iter < sparseSeedBisects; iter++ {
		if p.ctxErr() != nil {
			break // keep the feasible best-so-far; later phases tag Degraded
		}
		mid := 0.5 * (lo + hi)
		sp := scaled(mid)
		pk, err := probe(sp)
		if err != nil {
			return nil, err
		}
		if pk <= target {
			lo, best = mid, sp
		} else {
			hi = mid
		}
	}
	return best, nil
}

// sparseMGrid returns the geometric candidate grid of the sparse
// m-search: startM, then ~sparseMGridRatio steps, always ending at maxM.
func sparseMGrid(startM, maxM int) []int {
	if maxM < startM {
		return nil
	}
	grid := make([]int, 0, 24)
	m := startM
	for m < maxM {
		grid = append(grid, m)
		next := int(float64(m) * sparseMGridRatio)
		if next <= m {
			next = m + 1
		}
		m = next
	}
	return append(grid, maxM)
}

// searchMSparse is the sparse-backend m-search: evaluate the geometric
// grid exactly (every screen is a classic Theorem-1 stable evaluation —
// there is no cheaper composed evaluator without an eigenbasis), pick the
// quasi-convex minimum, then refine its immediate neighbors. Candidates
// fan out across the worker pool; the reduction scans in ascending m, so
// the outcome is identical for every worker width.
func searchMSparse(p Problem, eng *sim.Engine, specs []coreSpec, startM, maxM int, wa *workerArenas) (mSearch, error) {
	if maxM < startM {
		return mSearch{peak: math.Inf(1)}, nil
	}
	tp := p.BasePeriod
	type mCandidate struct {
		m     int
		peak  float64
		cache *sim.PeriodCache
		err   error
	}
	evalGrid := func(ms []int, cands []mCandidate) {
		parForW(p.workers(), len(ms), func(w, k int) {
			mm := ms[k]
			cands[k].m = mm
			if err := p.ctxErr(); err != nil {
				cands[k].err = err
				return
			}
			tc := tp / float64(mm)
			cache, err := eng.PeriodCache(tc)
			if err != nil {
				cands[k].err = err
				return
			}
			a := wa.arenas[w]
			thermalTwoModeSpecs(wa.tms[w], specs, p.Overhead, tc)
			if err := a.SetTwoMode(tc, wa.tms[w]); err != nil {
				cands[k].err = err
				return
			}
			if err := a.StableEndTempsInto(wa.ends[w], cache); err != nil {
				cands[k].err = err
				return
			}
			pk, _ := mat.VecMax(wa.ends[w])
			cands[k].peak, cands[k].cache = pk, cache
		})
	}

	grid := sparseMGrid(startM, maxM)
	cands := make([]mCandidate, len(grid))
	evalGrid(grid, cands)

	out := mSearch{peak: math.Inf(1)}
	var firstErr error
	inGrid := make(map[int]bool, len(grid)+2)
	// reduce folds candidates in ascending-m order: strict improvement
	// keeps the smallest m among equal minima, the classic tie-break.
	reduce := func(cands []mCandidate) {
		for _, c := range cands {
			inGrid[c.m] = true
			if c.err != nil {
				if isCtxErr(c.err) {
					out.truncated = true
					continue
				}
				if firstErr == nil {
					firstErr = c.err
				}
				continue
			}
			out.evals++
			out.evaluated++
			if c.peak < out.peak {
				out.peak, out.m, out.cache = c.peak, c.m, c.cache
			}
		}
	}
	reduce(cands)
	if firstErr != nil {
		return mSearch{peak: math.Inf(1), evals: out.evals}, firstErr
	}
	if out.m != 0 {
		// Local refinement around the grid minimum: the curve is smooth
		// between grid points, so only the immediate neighbors can beat it.
		var refine []int
		for _, mm := range []int{out.m - 1, out.m + 1} {
			if mm >= startM && mm <= maxM && !inGrid[mm] {
				refine = append(refine, mm)
			}
		}
		if len(refine) > 0 {
			rc := make([]mCandidate, len(refine))
			evalGrid(refine, rc)
			// A smaller neighbor with an equal peak must win (ascending-m
			// semantics); fold in ascending order of m across both sets.
			sort.Slice(rc, func(a, b int) bool { return rc[a].m < rc[b].m })
			for _, c := range rc {
				if c.err != nil {
					if isCtxErr(c.err) {
						out.truncated = true
					} else if firstErr == nil {
						firstErr = c.err
					}
					continue
				}
				out.evals++
				out.evaluated++
				if c.peak < out.peak || (c.peak == out.peak && c.m < out.m) {
					out.peak, out.m, out.cache = c.peak, c.m, c.cache
				}
			}
			if firstErr != nil {
				return mSearch{peak: math.Inf(1), evals: out.evals}, firstErr
			}
		}
	}
	if out.m == 0 {
		return mSearch{peak: math.Inf(1), evals: out.evals, truncated: true},
			deadlineErr(p.ctxErr())
	}
	return out, nil
}
