package solver

import (
	"math"
	"sync/atomic"

	"thermosc/internal/power"
	"thermosc/internal/schedule"
	"thermosc/internal/sim"
)

// PCO implements phase-conscious oscillation (§VI): it runs AO, then
// shifts each core's oscillation phase to spatially interleave high- and
// low-voltage intervals, and finally refills the freed temperature
// headroom by raising high-mode ratios while the (densely verified) peak
// stays within the threshold.
//
// Shifted schedules are no longer step-up, so PCO verifies peaks by dense
// sampling (Problem.PeakSamples per state interval) instead of Theorem 1's
// end-of-period shortcut — which is exactly why PCO costs more CPU time
// than AO in Table V. The dense evaluations run through the AO run's
// shared sim.Engine, so the per-interval operators (including the
// fractional sample offsets, which recur across every candidate) are
// computed once; the phase search and the refill trial scan fan out
// across p.Workers goroutines with deterministic reductions — any worker
// count returns the identical plan.
func PCO(p Problem) (*Result, error) {
	p, err := p.withDefaults()
	if err != nil {
		return nil, err
	}
	start := now()
	st, err := runAO(p)
	if err != nil {
		return nil, err
	}
	md := p.Model
	tmax := p.tmaxRise()
	workers := p.workers()
	n := len(st.specs)
	offsets := make([]float64, n)
	var denseEvals atomic.Int64

	// Per-worker arena scratch for the incremental dense evaluations (the
	// AO run released its own arenas back to the engine pool, so these are
	// typically the same buffers, re-acquired).
	var wa *workerArenas
	if !p.ClassicEval {
		wa = newWorkerArenas(st.eng, workers, n)
		defer wa.release()
	}

	// densePeak evaluates the stable-status peak of the specs with the
	// given per-core phase offsets. w selects the calling worker's arena
	// scratch (ignored by the classic path); both paths are bit-identical.
	// Safe for concurrent candidates: arenas are per-worker and the engine
	// caches synchronize internally.
	densePeak := func(w int, specs []coreSpec, offs []float64) (float64, *schedule.Schedule, error) {
		cyc, err := buildCycle(st.tc, specs, p.Overhead, cycleThermal)
		if err != nil {
			return math.Inf(1), nil, err
		}
		for i, off := range offs {
			if off != 0 {
				cyc = cyc.Shift(i, off)
			}
		}
		if !p.ClassicEval {
			denseEvals.Add(1)
			pk, err := wa.arenas[w].SchedStableDensePeak(st.cache, cyc, p.PeakSamples)
			if err != nil {
				return math.Inf(1), nil, err
			}
			return pk, cyc, nil
		}
		stable, err := sim.NewStableCached(md, cyc, st.cache)
		if err != nil {
			return math.Inf(1), nil, err
		}
		denseEvals.Add(1)
		peak, _, _ := stable.PeakDense(p.PeakSamples)
		return peak, cyc, nil
	}

	peak, cyc, err := densePeak(0, st.specs, offsets)
	if err != nil {
		return nil, err
	}

	// Phase search: greedily, core by core, pick the offset that minimizes
	// the dense peak (offset 0 — the AO alignment — is always a candidate,
	// so the phase search never hurts). Candidate offsets for one core are
	// independent, so they fan out across the worker pool; the winner is
	// chosen deterministically (lowest peak, ties to the smallest offset).
	peaks := make([]float64, p.PCOPhaseSteps)
	offsW := make([][]float64, workers)
	for w := range offsW {
		offsW[w] = make([]float64, n)
	}
	// Scale policy: on large sparse platforms each dense evaluation costs
	// hundreds of milliseconds, so the phase search visits only the few
	// oscillating cores most strongly coupled to the AO hot node (the
	// cores whose phase shift moves the most heat off the peak), and the
	// refill below is iteration-bounded. nil on the dense backend — small
	// platforms keep the historic exhaustive search bit for bit.
	pol := newScalePolicy(md)
	var phaseMask []bool
	if pol != nil {
		phaseMask = pol.phaseCores(st.hot, st.specs)
	}
	for i := 1; i < n; i++ {
		if err := p.ctxErr(); err != nil {
			// Anytime: keep the offsets chosen so far (0 for the rest — the
			// AO alignment, always valid) and re-verify densely below.
			st.degrade(DegradedPhase)
			break
		}
		if !st.specs[i].oscillating() {
			continue
		}
		if phaseMask != nil && !phaseMask[i] {
			continue
		}
		parForW(workers, p.PCOPhaseSteps, func(w, k int) {
			offs := offsW[w]
			copy(offs, offsets)
			offs[i] = float64(k) / float64(p.PCOPhaseSteps) * st.tc
			pk, _, err := densePeak(w, st.specs, offs)
			if err != nil {
				peaks[k] = math.Inf(1)
				return
			}
			peaks[k] = pk
		})
		bestOff, bestPeak := 0.0, math.Inf(1)
		for k, pk := range peaks {
			if pk < bestPeak {
				bestPeak = pk
				bestOff = float64(k) / float64(p.PCOPhaseSteps) * st.tc
			}
		}
		offsets[i] = bestOff
	}
	peak, cyc, err = densePeak(0, st.specs, offsets)
	if err != nil {
		return nil, err
	}

	// Headroom refill: raise the most valuable high-ratio while the peak
	// stays under the threshold. Per-core trials are independent; the
	// reduction keeps the sequential tie-break (highest gain, then lowest
	// resulting peak, then the smallest core index).
	dr := p.TUnitFrac
	specs := append([]coreSpec(nil), st.specs...)
	type refillTrial struct {
		ok   bool
		peak float64
		cyc  *schedule.Schedule
	}
	trials := make([]refillTrial, n)
	refillCap := 2000
	if pol != nil {
		// Each sparse refill iteration costs up to sparseTrialCap dense
		// evaluations at hundreds of milliseconds apiece; bound the polish.
		refillCap = sparsePCORefillIters
	}
	allJ := make([]int, n)
	for j := range allJ {
		allJ[j] = j
	}
	for iter := 0; iter < refillCap && peak <= tmax+feasTol; iter++ {
		if err := p.ctxErr(); err != nil {
			st.degrade(DegradedRefill)
			break
		}
		cand := allJ
		if pol != nil {
			cand = pol.refillers(st.hot, specs, func(j int) bool {
				c := specs[j]
				return c.High.Voltage > c.Low.Voltage && c.RH < 1
			})
		}
		for j := range trials {
			trials[j] = refillTrial{}
		}
		parForW(workers, len(cand), func(w, k int) {
			j := cand[k]
			c := specs[j]
			if c.High.Voltage <= c.Low.Voltage || c.RH >= 1 {
				return
			}
			var tsp []coreSpec
			if p.ClassicEval {
				tsp = withRH(specs, j, math.Min(1, c.RH+dr))
			} else {
				tsp = wa.withRHInto(w, specs, j, math.Min(1, c.RH+dr))
			}
			pk, tc2, err := densePeak(w, tsp, offsets)
			if err != nil || pk > tmax+feasTol {
				return
			}
			trials[j] = refillTrial{ok: true, peak: pk, cyc: tc2}
		})
		bestJ := -1
		var bestGain, bestPeakAfter float64
		var bestCyc *schedule.Schedule
		for _, j := range cand {
			c := specs[j]
			if !trials[j].ok {
				continue
			}
			gain := (c.High.Voltage - c.Low.Voltage)
			if bestJ == -1 || gain > bestGain || (gain == bestGain && trials[j].peak < bestPeakAfter) {
				bestJ, bestGain, bestPeakAfter, bestCyc = j, gain, trials[j].peak, trials[j].cyc
			}
		}
		if bestJ == -1 {
			break
		}
		specs[bestJ].RH = math.Min(1, specs[bestJ].RH+dr)
		peak, cyc = bestPeakAfter, bestCyc
	}
	_ = cyc // the thermal view certified `peak`; emit the driver view below

	emit, err := buildCycle(st.tc, specs, p.Overhead, cycleEmit)
	if err != nil {
		return nil, err
	}
	for i, off := range offsets {
		if off != 0 {
			emit = emit.Shift(i, off)
		}
	}

	st.evals += denseEvals.Load()
	return &Result{
		Name:       "PCO",
		Schedule:   emit,
		Throughput: nominalThroughput(specs),
		PeakRise:   peak,
		M:          st.m,
		Feasible:   peak <= tmax+feasTol,
		Elapsed:    since(start),
		Evals:      st.evals,
		Degraded:   st.degraded,
		MEvaluated: st.mEvaluated,
	}, nil
}

// modesOf extracts the constant modes of a constant schedule (helper for
// tests and experiment reporting).
func modesOf(s *schedule.Schedule) []power.Mode {
	modes := make([]power.Mode, s.NumCores())
	for i := range modes {
		modes[i] = s.ModeAt(i, 0)
	}
	return modes
}
