package solver

import (
	"math"
	"strings"
	"testing"

	"thermosc/internal/power"
	"thermosc/internal/thermal"
)

// The adjustment budget must stay positive and bounded for every
// representable quantum — the old int-space arithmetic overflowed to a
// negative budget on subnormal dr, silently skipping the TPT loops.
func TestAdjustmentBudget(t *testing.T) {
	for _, tc := range []struct {
		name    string
		n       int
		dr      float64
		want    int
		wantErr bool
	}{
		{name: "nominal", n: 4, dr: 1.0 / 200, want: 4*200 + 10},
		{name: "rounds up", n: 1, dr: 0.3, want: 4 + 10},
		{name: "subnormal clamps", n: 16, dr: 5e-324, want: maxAdjustIter},
		{name: "tiny clamps", n: 2, dr: 1e-12, want: maxAdjustIter},
		{name: "zero", n: 4, dr: 0, wantErr: true},
		{name: "negative", n: 4, dr: -0.1, wantErr: true},
		{name: "NaN", n: 4, dr: math.NaN(), wantErr: true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := adjustmentBudget(tc.n, tc.dr)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("accepted dr=%v with budget %d", tc.dr, got)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("budget(%d, %v) = %d, want %d", tc.n, tc.dr, got, tc.want)
			}
			if got <= 0 || got > maxAdjustIter {
				t.Fatalf("budget %d outside (0, %d]", got, maxAdjustIter)
			}
		})
	}
}

// Degenerate quanta must be rejected at problem validation, before any
// solver loop can inherit them.
func TestProblemRejectsDegenerateQuanta(t *testing.T) {
	md, err := thermal.Default(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := power.PaperLevels(2)
	if err != nil {
		t.Fatal(err)
	}
	base := Problem{Model: md, Levels: ls, TmaxC: 60, Overhead: power.DefaultOverhead()}

	for _, tc := range []struct {
		name string
		mut  func(*Problem)
		frag string
	}{
		{"subnormal TUnitFrac", func(p *Problem) { p.TUnitFrac = 5e-324 }, "TUnitFrac"},
		{"NaN TUnitFrac", func(p *Problem) { p.TUnitFrac = math.NaN() }, "TUnitFrac"},
		{"subnormal BasePeriod", func(p *Problem) { p.BasePeriod = 5e-324 }, "base period"},
		{"NaN BasePeriod", func(p *Problem) { p.BasePeriod = math.NaN() }, "base period"},
		{"negative BasePeriod", func(p *Problem) { p.BasePeriod = -1 }, "base period"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := base
			tc.mut(&p)
			if _, err := p.withDefaults(); err == nil {
				t.Fatal("degenerate problem accepted")
			} else if !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("error %q does not name %q", err, tc.frag)
			}
			// The full solver must reject it too, not hang.
			if _, err := AO(p); err == nil {
				t.Fatal("AO accepted a degenerate problem")
			}
		})
	}
}
