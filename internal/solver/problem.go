// Package solver implements the paper's throughput-maximization
// algorithms for temperature-constrained multi-core platforms:
//
//   - Ideal: the continuous-voltage upper-bound assignment obtained by
//     pinning every core's steady-state temperature at Tmax (§V, following
//     Hanumaiah et al.).
//   - LNS: lower-neighboring-speed rounding of the ideal voltages (§III).
//   - EXS: exhaustive search over constant per-core discrete modes
//     (Algorithm 1), plus a pruned branch-and-bound variant that returns
//     the identical optimum orders of magnitude faster.
//   - AO: aligned frequency oscillation (Algorithm 2) — the paper's main
//     contribution.
//   - PCO: phase-conscious oscillation — AO followed by per-core phase
//     interleaving and headroom refill (§VI).
package solver

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"thermosc/internal/power"
	"thermosc/internal/schedule"
	"thermosc/internal/sim"
	"thermosc/internal/thermal"
)

// Problem is one throughput-maximization instance.
type Problem struct {
	Model  *thermal.Model
	Levels *power.LevelSet
	// TmaxC is the absolute peak temperature threshold in °C.
	TmaxC float64
	// Overhead is the DVFS transition cost (τ). Zero τ means transitions
	// are free and the m-search is capped only by MaxM.
	Overhead power.TransitionOverhead
	// BasePeriod is t_p, the period of the m=1 schedule. Defaults to 20 ms
	// (the paper's motivation-example period).
	BasePeriod float64
	// MaxM caps the oscillation search regardless of the overhead-derived
	// bound. Defaults to 4096.
	MaxM int
	// TUnitFrac sets the TPT adjustment quantum t_unit as a fraction of
	// the oscillation cycle. Defaults to 1/200.
	TUnitFrac float64
	// PCOPhaseSteps is the number of phase offsets tried per core by PCO.
	// Defaults to 8.
	PCOPhaseSteps int
	// PeakSamples is the per-interval dense-sampling resolution used when
	// evaluating non-step-up schedules (PCO). Defaults to 24.
	PeakSamples int
	// Workers sets the worker-pool width of AO/PCO's parallel candidate
	// scans: the m-search, the TPT reduction / headroom-refill / dense
	// verification trial evaluations, and PCO's phase search. 0 (the
	// default) uses GOMAXPROCS; 1 forces the fully sequential reference
	// path. Every width produces bit-identical plans — candidates are
	// evaluated independently and reduced in deterministic order (see
	// determinism_test.go).
	Workers int
	// DisallowOff removes the inactive mode (v = f = 0) from the search
	// space. The paper's system model allows inactive cores, so the
	// default (false) permits shutting cores down — which is what makes
	// tight thresholds (e.g. the 9-core platform at Tmax = 50 °C in
	// Fig. 7) feasible at all.
	DisallowOff bool
	// ClassicEval forces the reference evaluation strategy: a full
	// sequential-order m-scan with per-candidate schedule construction and
	// per-evaluation allocation, exactly the pre-arena code path. The
	// default (false) uses the incremental evaluator — composed eigenbasis
	// screening of m candidates with quasi-convexity-aware early
	// termination, plus pooled per-solve arenas for the phase-3 trial
	// loops. Both paths return bit-identical plans (peak, throughput,
	// schedule segments, chosen m); they differ only in Evals/MEvaluated
	// accounting and speed. The classic path backs the differential tests
	// and is the fallback if the incremental evaluator's quasi-convexity
	// assumption (Theorem 5) is ever in doubt for an exotic platform.
	ClassicEval bool
	// Ctx, when non-nil, cancels the long-running searches: the AO/PCO
	// m-search, TPT/refill/dense adjustment loops, PCO's phase search, and
	// the EXS branch-and-bound all observe it and abort with ctx.Err().
	// A nil Ctx never cancels (context.Background semantics).
	Ctx context.Context
	// Engine, when non-nil, supplies a shared evaluation engine instead of
	// a per-run one, so concurrent solves on the same model reuse one
	// propagator/period-operator pool. Results are bit-identical either
	// way (see sim.Engine); the engine's model must equal Model.
	Engine *sim.Engine
}

// withDefaults returns a copy of p with zero fields replaced by defaults.
func (p Problem) withDefaults() (Problem, error) {
	if p.Model == nil {
		return p, fmt.Errorf("solver: Problem.Model is nil")
	}
	if p.Levels == nil {
		return p, fmt.Errorf("solver: Problem.Levels is nil")
	}
	if p.TmaxC <= p.Model.Package().AmbientC {
		return p, fmt.Errorf("solver: Tmax %.1f °C not above ambient %.1f °C",
			p.TmaxC, p.Model.Package().AmbientC)
	}
	if p.BasePeriod == 0 {
		p.BasePeriod = 20e-3
	}
	if math.IsNaN(p.BasePeriod) || p.BasePeriod < 1e-9 {
		// A subnormal or otherwise absurd period would starve every
		// downstream quantum (t_unit, δ, τ) of float precision.
		return p, fmt.Errorf("solver: base period %v below 1 ns", p.BasePeriod)
	}
	if p.MaxM == 0 {
		p.MaxM = 4096
	}
	if p.TUnitFrac == 0 {
		p.TUnitFrac = 1.0 / 200
	}
	if math.IsNaN(p.TUnitFrac) || p.TUnitFrac < 1e-9 || p.TUnitFrac > 0.5 {
		// The floor keeps ⌈1/TUnitFrac⌉ adjustment quanta representable:
		// a subnormal fraction would overflow the AO/PCO iteration budget.
		return p, fmt.Errorf("solver: TUnitFrac %v outside [1e-9, 0.5]", p.TUnitFrac)
	}
	if p.PCOPhaseSteps == 0 {
		p.PCOPhaseSteps = 8
	}
	if p.PeakSamples == 0 {
		p.PeakSamples = 24
	}
	if p.Workers < 0 {
		return p, fmt.Errorf("solver: negative worker count %d", p.Workers)
	}
	if p.Engine != nil && p.Engine.Model() != p.Model {
		return p, fmt.Errorf("solver: Problem.Engine bound to a different model")
	}
	return p, nil
}

// ctxErr reports the cancellation state of the problem's context; a nil
// context never cancels. The search loops call this between candidate
// evaluations, so cancellation latency is one evaluation, not one solve.
func (p Problem) ctxErr() error {
	if p.Ctx == nil {
		return nil
	}
	return p.Ctx.Err()
}

// engine returns the shared evaluation engine, or a fresh one for this
// run when none was provided.
func (p Problem) engine() *sim.Engine {
	if p.Engine != nil {
		return p.Engine
	}
	return sim.NewEngine(p.Model)
}

// workers resolves the effective worker-pool width.
func (p Problem) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// tmaxRise converts the absolute threshold to a rise above ambient.
func (p Problem) tmaxRise() float64 { return p.Model.Rise(p.TmaxC) }

// Result is the outcome of one solver run.
type Result struct {
	Name string
	// Schedule is the thermally-accurate periodic schedule to execute
	// (for AO/PCO this is one oscillation cycle, including the
	// overhead-extended high intervals; repeat it indefinitely).
	Schedule *schedule.Schedule
	// Throughput is the chip-wide useful throughput (eq. (5)); for AO/PCO
	// it excludes the transition-stall padding, i.e. it counts the work
	// actually completed.
	Throughput float64
	// PeakRise is the verified stable-status peak temperature rise (K).
	// For AO/PCO it certifies the EXECUTED timeline — the emitted
	// schedule plus the τ-long high-voltage transition windows a real
	// DVFS rail produces (see internal/actuator) — so it can exceed the
	// peak of the bare Schedule by a small margin.
	PeakRise float64
	// M is the chosen oscillation count (1 for constant-mode solutions).
	M int
	// Feasible reports whether PeakRise respects the threshold.
	Feasible bool
	// Elapsed is the solver wall-clock time.
	Elapsed time.Duration
	// Evals counts steady-state/peak evaluations, a machine-independent
	// cost measure alongside Elapsed.
	Evals int64
	// Degraded is non-empty when the context deadline truncated the
	// search and this is the best-so-far plan, not the full answer. The
	// Schedule/PeakRise/Feasible fields are still exact for the plan
	// actually returned — only optimality is lost. Degraded results are
	// timing-dependent: two runs under different deadlines may differ, so
	// they must never enter determinism-keyed plan caches.
	Degraded DegradedReason
	// MEvaluated counts the oscillation-count candidates the m-search
	// managed to evaluate before the deadline. On a complete run the
	// incremental evaluator may stop early once the peak-vs-m curve has
	// risen decisively (Theorem 5 quasi-convexity), so this can be less
	// than the full scan width; Problem.ClassicEval restores the
	// exhaustive count. 0 for solvers without an m-search.
	MEvaluated int
}

// PeakC returns the verified peak in absolute °C for the given model.
func (r *Result) PeakC(md *thermal.Model) float64 { return md.Absolute(r.PeakRise) }

// feasTol is the slack (in Kelvin) allowed when classifying a result as
// feasible, absorbing the round-off of long propagation chains.
const feasTol = 1e-6
