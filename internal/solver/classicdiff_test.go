package solver

import (
	"math/rand"
	"testing"
)

// The incremental m-search evaluator (composed eigenbasis screening with
// early termination, plus per-solve arenas) must choose bit-identical
// plans to the classic full-scan reference path (Problem.ClassicEval).
// The sweep mirrors the seeded platform distribution of `make
// verify-diff` (cmd/thermosc-verify drawCase): 1–6 cores, 2–3 paper
// levels, 10–40 ms base periods, thresholds from comfortably feasible to
// borderline infeasible.
func TestIncrementalMatchesClassicSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shapes := [][2]int{{1, 1}, {2, 1}, {1, 3}, {2, 2}, {3, 2}}
	periods := []float64{10e-3, 20e-3, 40e-3}
	cases := 12
	if testing.Short() {
		cases = 4
	}
	for i := 0; i < cases; i++ {
		sh := shapes[rng.Intn(len(shapes))]
		levels := 2 + rng.Intn(2)
		period := periods[rng.Intn(len(periods))]
		tmaxC := 50 + 25*rng.Float64()
		p := problem(t, sh[0], sh[1], levels, tmaxC)
		p.BasePeriod = period
		for name, f := range map[string]func(Problem) (*Result, error){
			"AO":  AO,
			"PCO": PCO,
		} {
			pc := p
			pc.ClassicEval = true
			classic, cErr := f(pc)
			pi := p
			pi.ClassicEval = false
			incr, iErr := f(pi)
			if (cErr == nil) != (iErr == nil) {
				t.Fatalf("case %d %s %dx%d L%d tmax=%.2f: error divergence classic=%v incremental=%v",
					i, name, sh[0], sh[1], levels, tmaxC, cErr, iErr)
			}
			if cErr != nil {
				continue // both refuse identically
			}
			if classic.Throughput != incr.Throughput || classic.PeakRise != incr.PeakRise ||
				classic.M != incr.M || classic.Feasible != incr.Feasible {
				t.Fatalf("case %d %s %dx%d L%d tmax=%.2f period=%v: plan diverged:\n"+
					"  classic     thr=%v peak=%v m=%d feasible=%v\n"+
					"  incremental thr=%v peak=%v m=%d feasible=%v",
					i, name, sh[0], sh[1], levels, tmaxC, period,
					classic.Throughput, classic.PeakRise, classic.M, classic.Feasible,
					incr.Throughput, incr.PeakRise, incr.M, incr.Feasible)
			}
			if (classic.Schedule == nil) != (incr.Schedule == nil) {
				t.Fatalf("case %d %s: schedule presence diverged", i, name)
			}
			if classic.Schedule == nil {
				continue
			}
			for c := 0; c < classic.Schedule.NumCores(); c++ {
				sa, sb := classic.Schedule.CoreSegments(c), incr.Schedule.CoreSegments(c)
				if len(sa) != len(sb) {
					t.Fatalf("case %d %s core %d: segment counts differ (%d vs %d)",
						i, name, c, len(sa), len(sb))
				}
				for q := range sa {
					if sa[q] != sb[q] {
						t.Fatalf("case %d %s core %d segment %d differs: %v vs %v",
							i, name, c, q, sa[q], sb[q])
					}
				}
			}
		}
	}
}
