package solver

import (
	"math"
	"sync"
	"sync/atomic"

	"thermosc/internal/sim"
)

// This file is the parallel half of the AO/PCO evaluation engine: a
// deterministic worker pool (parFor) and the fanned-out m-search
// (searchM). The contract mirrors exs_parallel.go: any worker count —
// including 1, the sequential reference path — produces bit-identical
// results. That holds because every candidate (an oscillation count m, a
// TPT/refill trial index j, a PCO phase offset k) is evaluated
// independently with arithmetic untouched by scheduling, and the winner
// is reduced by scanning candidates in their sequential order with the
// sequential comparison operators.

// parFor runs f(i) for every i in [0, n) across at most `workers`
// goroutines. workers <= 1 (or n <= 1) degenerates to a plain loop on the
// calling goroutine — no spawning, same call order as the pre-parallel
// code. f must not panic across iterations it does not own; iteration
// claiming is a single atomic counter, so the set of executed indices is
// always exactly [0, n).
func parFor(workers, n int, f func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// mCandidate is one evaluated oscillation count.
type mCandidate struct {
	peak  float64
	cache *sim.PeriodCache
	err   error
}

// mSearch is the outcome of one searchM scan.
type mSearch struct {
	m         int     // chosen oscillation count (0 if no candidate succeeded)
	peak      float64 // Theorem-1 peak of the chosen m
	cache     *sim.PeriodCache
	evals     int64 // successful candidate evaluations
	evaluated int   // candidates that completed (== scan width on a full run)
	truncated bool  // the context deadline cut the scan short
}

// searchM scans m ∈ [startM, maxM] for the peak-minimizing oscillation
// count (Algorithm 2 phase 2; with transition overhead the peak is not
// monotone in m, so every candidate is evaluated). Candidates are
// independent — each builds its thermal-view cycle, fetches the period
// operators from the shared engine pool, and evaluates the Theorem-1
// peak — so they fan out across the worker pool; the winner is the
// smallest m attaining the strictly lowest peak, exactly the sequential
// scan's tie-break.
//
// Anytime semantics: a candidate aborted by the context deadline does not
// fail the scan. If at least one candidate completed, the best of those
// is returned with truncated=true — a valid (if possibly suboptimal)
// oscillation count the caller tags Degraded. Only when the deadline
// killed EVERY candidate does searchM return an ErrDeadline. A genuine
// evaluation error still aborts with the error of the smallest failing m,
// matching the sequential loop's first-error abort.
func searchM(p Problem, eng *sim.Engine, specs []coreSpec, startM, maxM int) (mSearch, error) {
	tp := p.BasePeriod
	n := maxM - startM + 1
	if n <= 0 {
		return mSearch{peak: math.Inf(1)}, nil
	}
	cands := make([]mCandidate, n)
	parFor(p.workers(), n, func(k int) {
		if err := p.ctxErr(); err != nil {
			cands[k] = mCandidate{err: err}
			return
		}
		mm := startM + k
		tc := tp / float64(mm)
		cyc, err := buildCycle(tc, specs, p.Overhead, cycleThermal)
		if err != nil {
			cands[k] = mCandidate{err: err}
			return
		}
		cache, err := eng.PeriodCache(tc)
		if err != nil {
			cands[k] = mCandidate{err: err}
			return
		}
		peak, _, err := sim.StepUpPeak(eng.Model(), cyc, cache)
		if err != nil {
			cands[k] = mCandidate{err: err}
			return
		}
		cands[k] = mCandidate{peak: peak, cache: cache}
	})

	// The reduction scans every candidate before deciding: evals must
	// count all successful evaluations even when an earlier m failed
	// (the pool really did run them), and the reported error is the
	// smallest failing m's, matching the sequential loop's first abort.
	// Context aborts are tallied separately — they truncate, not fail.
	out := mSearch{peak: math.Inf(1)}
	var firstErr error
	for k, c := range cands {
		if c.err != nil {
			if isCtxErr(c.err) {
				out.truncated = true
				continue
			}
			if firstErr == nil {
				firstErr = c.err
			}
			continue
		}
		out.evals++
		out.evaluated++
		if c.peak < out.peak {
			out.peak, out.m, out.cache = c.peak, startM+k, c.cache
		}
	}
	if firstErr != nil {
		return mSearch{peak: math.Inf(1), evals: out.evals}, firstErr
	}
	if out.truncated && out.m == 0 {
		return mSearch{peak: math.Inf(1), evals: out.evals, truncated: true},
			deadlineErr(p.ctxErr())
	}
	return out, nil
}

// withRH returns a copy of specs with core j's high-mode ratio replaced.
// Trial evaluations run concurrently, so each gets its own copy.
func withRH(specs []coreSpec, j int, rh float64) []coreSpec {
	trial := append([]coreSpec(nil), specs...)
	trial[j].RH = rh
	return trial
}
