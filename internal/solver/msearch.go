package solver

import (
	"math"
	"sync"
	"sync/atomic"

	"thermosc/internal/schedule"
	"thermosc/internal/sim"
)

// This file is the parallel half of the AO/PCO evaluation engine: a
// deterministic worker pool (parFor/parForW), the per-worker arena scratch
// (workerArenas), and the fanned-out m-search (searchM). The contract
// mirrors exs_parallel.go: any worker count — including 1, the sequential
// reference path — produces bit-identical results. That holds because
// every candidate (an oscillation count m, a TPT/refill trial index j, a
// PCO phase offset k) is evaluated independently with arithmetic untouched
// by scheduling, and the winner is reduced by scanning candidates in their
// sequential order with the sequential comparison operators. Worker
// indices select private scratch arenas, never values.

// parForW runs f(worker, i) for every i in [0, n) across at most `workers`
// goroutines, passing each goroutine's stable pool index so it can own
// per-worker scratch (an EvalArena). workers <= 1 (or n <= 1) degenerates
// to a plain loop on the calling goroutine as worker 0 — no spawning, same
// call order as the pre-parallel code. Iteration claiming is a single
// atomic counter, so the set of executed indices is always exactly [0, n).
// f's arithmetic must not depend on the worker index — only which scratch
// buffers it touches may.
func parForW(workers, n int, f func(worker, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			f(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// parFor is parForW without the worker index, for scans with no
// per-worker scratch.
func parFor(workers, n int, f func(int)) {
	parForW(workers, n, func(_, i int) { f(i) })
}

// workerArenas owns the per-worker evaluation scratch of one solver run:
// an EvalArena plus reusable two-mode-spec and trial-spec buffers per
// worker slot. Acquired from the engine pool up front and released (with
// NaN poisoning, see sim.EvalArena) when the run ends.
type workerArenas struct {
	eng    *sim.Engine
	arenas []*sim.EvalArena
	tms    [][]schedule.TwoModeSpec
	trial  [][]coreSpec
	ends   [][]float64 // per-worker end-temperature buffers (sparse screening)
}

func newWorkerArenas(eng *sim.Engine, workers, cores int) *workerArenas {
	wa := &workerArenas{
		eng:    eng,
		arenas: make([]*sim.EvalArena, workers),
		tms:    make([][]schedule.TwoModeSpec, workers),
		trial:  make([][]coreSpec, workers),
		ends:   make([][]float64, workers),
	}
	for w := 0; w < workers; w++ {
		wa.arenas[w] = eng.AcquireArena()
		wa.tms[w] = make([]schedule.TwoModeSpec, cores)
		wa.trial[w] = make([]coreSpec, cores)
		wa.ends[w] = make([]float64, cores)
	}
	return wa
}

func (wa *workerArenas) release() {
	for _, a := range wa.arenas {
		wa.eng.ReleaseArena(a)
	}
	wa.arenas = nil
}

// withRHInto is withRH writing into worker w's trial buffer instead of
// allocating. The buffer is only valid until the worker's next trial.
func (wa *workerArenas) withRHInto(w int, specs []coreSpec, j int, rh float64) []coreSpec {
	trial := wa.trial[w]
	copy(trial, specs)
	trial[j].RH = rh
	return trial
}

// mSearch is the outcome of one searchM scan.
type mSearch struct {
	m         int     // chosen oscillation count (0 if no candidate succeeded)
	peak      float64 // classic Theorem-1 peak of the chosen m
	cache     *sim.PeriodCache
	evals     int64 // successful evaluations (screens + classic confirmations)
	evaluated int   // m candidates screened (== scan width unless early-stopped)
	truncated bool  // the context deadline cut the scan short
}

// Tuning of the incremental m-search. The screening sweep walks candidates
// in fixed-size chunks (so the early-stop decision lands on the same
// boundary for every worker width) and stops once the composed peak has
// risen for a full window of consecutive candidates — Theorem 5's
// quasi-convex shape makes everything past that point worse. The window is
// deliberately larger than small scans (forced m, tight overhead bounds)
// ever reach, and the margin keeps plateau wiggle from counting as a rise.
// Screened minima within confirmBand Kelvin of the best composed peak are
// re-evaluated classically: the composed evaluator agrees with the classic
// path to ≲1e-8 K (see sim.Engine.StepUpPeakComposed), two orders of
// magnitude tighter than the band, so the classic winner is always inside
// it and the chosen plan is bit-identical to a full classic scan.
const (
	mScreenChunk = 32
	mStopWindow  = 24
	mStopMargin  = 1e-3
	mConfirmBand = 1e-6
)

// searchM scans m ∈ [startM, maxM] for the peak-minimizing oscillation
// count (Algorithm 2 phase 2). The default incremental path screens
// candidates with the composed eigenbasis evaluator (O(z·dim) each, no
// per-candidate dense operators), early-terminates the sweep once the peak
// is decidedly past Theorem 5's minimum, and classically confirms the
// near-minimal band so the chosen (m, peak, cache) matches the full
// classic scan bit for bit. Problem.ClassicEval forces that full classic
// scan instead.
//
// Anytime semantics: a candidate aborted by the context deadline does not
// fail the scan. If at least one screened candidate was classically
// confirmed, the best of those is returned with truncated=true — a valid
// (if possibly suboptimal) oscillation count the caller tags Degraded.
// Only when the deadline left NO confirmed candidate does searchM return
// an ErrDeadline. A genuine evaluation error aborts with the error of the
// smallest failing m among the candidates actually visited.
//
// wa supplies per-worker scratch; pass nil to let searchM manage its own.
func searchM(p Problem, eng *sim.Engine, specs []coreSpec, startM, maxM int, wa *workerArenas) (mSearch, error) {
	if p.ClassicEval {
		return searchMClassic(p, eng, specs, startM, maxM)
	}
	if wa == nil {
		wa = newWorkerArenas(eng, p.workers(), len(specs))
		defer wa.release()
	}
	if eng.Model().SparsePath() {
		// No eigenbasis, no composed screening: the sparse backend walks a
		// geometric grid of exact evaluations instead (see scale.go).
		return searchMSparse(p, eng, specs, startM, maxM, wa)
	}
	return searchMIncremental(p, eng, specs, startM, maxM, wa)
}

func searchMIncremental(p Problem, eng *sim.Engine, specs []coreSpec, startM, maxM int, wa *workerArenas) (mSearch, error) {
	tp := p.BasePeriod
	n := maxM - startM + 1
	if n <= 0 {
		return mSearch{peak: math.Inf(1)}, nil
	}
	type screenResult struct {
		peak float64
		err  error
	}
	cands := make([]screenResult, n)
	workers := p.workers()

	out := mSearch{peak: math.Inf(1)}
	var firstErr error
	bestComposed := math.Inf(1)
	rising := 0
	screened := 0 // candidates attempted (scan prefix length)
	for base := 0; base < n; base += mScreenChunk {
		end := base + mScreenChunk
		if end > n {
			end = n
		}
		parForW(workers, end-base, func(w, k int) {
			idx := base + k
			if err := p.ctxErr(); err != nil {
				cands[idx] = screenResult{err: err}
				return
			}
			tc := tp / float64(startM+idx)
			a := wa.arenas[w]
			tms := wa.tms[w]
			thermalTwoModeSpecs(tms, specs, p.Overhead, tc)
			if err := a.SetTwoMode(tc, tms); err != nil {
				cands[idx] = screenResult{err: err}
				return
			}
			pk, err := a.ComposedEndPeak()
			cands[idx] = screenResult{peak: pk, err: err}
		})
		// Sequential chunk reduction: counting, error precedence, and the
		// early-stop decision all run in candidate order on one goroutine,
		// so they are identical for every worker width.
		for idx := base; idx < end; idx++ {
			c := cands[idx]
			if c.err != nil {
				if isCtxErr(c.err) {
					out.truncated = true
					continue
				}
				if firstErr == nil {
					firstErr = c.err
				}
				continue
			}
			out.evals++
			out.evaluated++
			switch {
			case c.peak < bestComposed:
				bestComposed = c.peak
				rising = 0
			case c.peak > bestComposed+mStopMargin:
				rising++
			default:
				rising = 0
			}
		}
		screened = end
		if firstErr != nil {
			return mSearch{peak: math.Inf(1), evals: out.evals}, firstErr
		}
		if rising >= mStopWindow {
			break
		}
	}

	// Classic confirmation of the near-minimal band: every screened
	// candidate within mConfirmBand of the best composed peak is
	// re-evaluated through the classic PeriodCache path, and the reduction
	// keeps the smallest m with the strictly lowest classic peak — the
	// full classic scan's winner and tie-break.
	for idx := 0; idx < screened; idx++ {
		c := cands[idx]
		if c.err != nil || c.peak > bestComposed+mConfirmBand {
			continue
		}
		if err := p.ctxErr(); err != nil {
			out.truncated = true
			break
		}
		mm := startM + idx
		tc := tp / float64(mm)
		cyc, err := buildCycle(tc, specs, p.Overhead, cycleThermal)
		if err != nil {
			return mSearch{peak: math.Inf(1), evals: out.evals}, err
		}
		cache, err := eng.PeriodCache(tc)
		if err != nil {
			return mSearch{peak: math.Inf(1), evals: out.evals}, err
		}
		peak, _, err := sim.StepUpPeak(eng.Model(), cyc, cache)
		if err != nil {
			return mSearch{peak: math.Inf(1), evals: out.evals}, err
		}
		out.evals++
		if peak < out.peak {
			out.peak, out.m, out.cache = peak, mm, cache
		}
	}
	if out.m == 0 {
		// No candidate survived to a classic confirmation: the deadline
		// beat the whole scan (screening errors abort above, and any
		// successful screen puts its minimum in the band).
		return mSearch{peak: math.Inf(1), evals: out.evals, truncated: true},
			deadlineErr(p.ctxErr())
	}
	return out, nil
}

// searchMClassic is the reference full scan: every candidate builds its
// thermal-view cycle, fetches the period operators from the shared engine
// pool, and evaluates the Theorem-1 peak through the Schedule-based
// stable solve. Kept behind Problem.ClassicEval for the differential
// tests pinning the incremental path bit-identical to it.
func searchMClassic(p Problem, eng *sim.Engine, specs []coreSpec, startM, maxM int) (mSearch, error) {
	tp := p.BasePeriod
	n := maxM - startM + 1
	if n <= 0 {
		return mSearch{peak: math.Inf(1)}, nil
	}
	type mCandidate struct {
		peak  float64
		cache *sim.PeriodCache
		err   error
	}
	cands := make([]mCandidate, n)
	parFor(p.workers(), n, func(k int) {
		if err := p.ctxErr(); err != nil {
			cands[k] = mCandidate{err: err}
			return
		}
		mm := startM + k
		tc := tp / float64(mm)
		cyc, err := buildCycle(tc, specs, p.Overhead, cycleThermal)
		if err != nil {
			cands[k] = mCandidate{err: err}
			return
		}
		cache, err := eng.PeriodCache(tc)
		if err != nil {
			cands[k] = mCandidate{err: err}
			return
		}
		peak, _, err := sim.StepUpPeak(eng.Model(), cyc, cache)
		if err != nil {
			cands[k] = mCandidate{err: err}
			return
		}
		cands[k] = mCandidate{peak: peak, cache: cache}
	})

	// The reduction scans every candidate before deciding: evals must
	// count all successful evaluations even when an earlier m failed
	// (the pool really did run them), and the reported error is the
	// smallest failing m's, matching the sequential loop's first abort.
	// Context aborts are tallied separately — they truncate, not fail.
	out := mSearch{peak: math.Inf(1)}
	var firstErr error
	for k, c := range cands {
		if c.err != nil {
			if isCtxErr(c.err) {
				out.truncated = true
				continue
			}
			if firstErr == nil {
				firstErr = c.err
			}
			continue
		}
		out.evals++
		out.evaluated++
		if c.peak < out.peak {
			out.peak, out.m, out.cache = c.peak, startM+k, c.cache
		}
	}
	if firstErr != nil {
		return mSearch{peak: math.Inf(1), evals: out.evals}, firstErr
	}
	if out.truncated && out.m == 0 {
		return mSearch{peak: math.Inf(1), evals: out.evals, truncated: true},
			deadlineErr(p.ctxErr())
	}
	return out, nil
}

// withRH returns a copy of specs with core j's high-mode ratio replaced.
// The allocating form, for call sites without per-worker scratch.
func withRH(specs []coreSpec, j int, rh float64) []coreSpec {
	trial := append([]coreSpec(nil), specs...)
	trial[j].RH = rh
	return trial
}
