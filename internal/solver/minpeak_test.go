package solver

import (
	"math"
	"testing"
)

func TestMinPeakInvertsMaximize(t *testing.T) {
	p := problem(t, 3, 1, 2, 65)
	// What AO achieves at 60 °C should be recoverable near 60 °C by the
	// dual solve.
	p60 := p
	p60.TmaxC = 60
	fwd, err := AO(p60)
	if err != nil {
		t.Fatal(err)
	}
	res, tmin, err := MinPeak(p, fwd.Throughput, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.Throughput < fwd.Throughput-1e-9 {
		t.Fatalf("dual result does not meet the target: %+v", res)
	}
	if tmin > 60+0.2 {
		t.Fatalf("minimal threshold %.3f should not exceed the forward threshold 60", tmin)
	}
	if tmin < p.Model.Package().AmbientC {
		t.Fatalf("threshold %.3f below ambient", tmin)
	}
	// Verified peak at the minimal threshold respects it.
	if res.PeakC(p.Model) > tmin+1e-3 {
		t.Fatalf("peak %.3f above minimal threshold %.3f", res.PeakC(p.Model), tmin)
	}
}

func TestMinPeakMonotoneInTarget(t *testing.T) {
	p := problem(t, 2, 1, 2, 65)
	_, tEasy, err := MinPeak(p, 0.7, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	_, tHard, err := MinPeak(p, 1.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if tHard <= tEasy {
		t.Fatalf("higher target must need a hotter threshold: %.2f vs %.2f", tHard, tEasy)
	}
}

func TestMinPeakValidation(t *testing.T) {
	p := problem(t, 2, 1, 2, 65)
	if _, _, err := MinPeak(p, 0, 0.1); err == nil {
		t.Fatal("zero target must error")
	}
	if _, _, err := MinPeak(p, 2.0, 0.1); err == nil {
		t.Fatal("target above top speed must error")
	}
}

func TestMinPeakTopSpeedTarget(t *testing.T) {
	p := problem(t, 2, 1, 2, 90)
	res, tmin, err := MinPeak(p, 1.3, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Throughput-1.3) > 1e-9 {
		t.Fatalf("throughput %v at full-speed target", res.Throughput)
	}
	// Full speed needs the temperature the full-throttle steady state
	// reaches — well above 65 °C on this calibration.
	if tmin < 65 {
		t.Fatalf("full speed cannot be this cool: %.2f", tmin)
	}
}
