package solver

import (
	"context"
	"errors"
	"fmt"
)

// This file is the solver's typed error taxonomy. Callers branch on these
// with errors.Is instead of matching message strings:
//
//   - ErrInfeasible: the platform cannot meet the threshold at all — even
//     the constant safe floor violates Tmax (or shuts every core down).
//     Retrying cannot help; the request itself must change.
//   - ErrDeadline: the context expired before ANY valid plan was found.
//     Deadline aborts wrap the underlying context error, so
//     errors.Is(err, context.DeadlineExceeded) keeps working.
//   - ErrDegraded: a caller that requires a COMPLETE result received a
//     degraded one (Result.Degraded != DegradedNone). The anytime solvers
//     themselves never return this — they return the degraded Result with
//     a nil error — but refresh/cache layers that must not accept
//     truncated plans use it as their refusal.
var (
	ErrInfeasible = errors.New("solver: infeasible under Tmax")
	ErrDeadline   = errors.New("solver: deadline before any valid plan")
	ErrDegraded   = errors.New("solver: degraded result where a complete one is required")
)

// DegradedReason tags how far an anytime solve got before its context
// deadline truncated the search. Empty (DegradedNone) means the solve ran
// to completion and the result is the deterministic full answer; any
// other value marks a timing-dependent best-so-far plan that callers must
// never treat as cacheable.
type DegradedReason string

const (
	// DegradedNone: the search completed; the result is NOT degraded.
	DegradedNone DegradedReason = ""
	// DegradedMSearch: the m-scan (Algorithm 2 phase 2) was truncated;
	// the chosen oscillation count came from the candidates that finished.
	DegradedMSearch DegradedReason = "m-search-truncated"
	// DegradedAdjust: the TPT-guided ratio reduction stopped early.
	DegradedAdjust DegradedReason = "tpt-adjust-truncated"
	// DegradedRefill: the headroom-refill loop stopped early.
	DegradedRefill DegradedReason = "refill-truncated"
	// DegradedDense: the dense re-verification loop stopped early (the
	// reported peak is still a full dense evaluation of the final specs).
	DegradedDense DegradedReason = "dense-verify-truncated"
	// DegradedPhase: PCO's phase search stopped early.
	DegradedPhase DegradedReason = "phase-search-truncated"
	// DegradedAltSeed: the deadline landed between or inside AO's two
	// seeds, so the ideal-pinned/EXS-anchored comparison is incomplete.
	DegradedAltSeed DegradedReason = "alt-seed-truncated"
	// DegradedEXS: the branch-and-bound returned its incumbent instead of
	// the proven optimum.
	DegradedEXS DegradedReason = "exs-truncated"
	// DegradedFallback: the plan is the constant safe floor (SafeFloor),
	// not a solver search result at all.
	DegradedFallback DegradedReason = "safe-floor"
)

// isCtxErr reports whether err is (or wraps) a context cancellation —
// the one error class the anytime solvers degrade through instead of
// propagating.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// deadlineErr wraps a context error as an ErrDeadline so callers can
// test either sentinel. A nil cause (defensive) yields plain ErrDeadline.
func deadlineErr(cause error) error {
	if cause == nil {
		return ErrDeadline
	}
	return fmt.Errorf("%w: %w", ErrDeadline, cause)
}
