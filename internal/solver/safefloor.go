package solver

import "fmt"

// SafeFloor computes the fallback chain's terminal plan: the constant
// per-core assignment obtained from the ideal-speed step of Algorithm 2
// with every continuous voltage rounded DOWN to the nearest discrete mode
// — i.e. the LNS baseline (§III). Rounding down from the ideal-pinned
// voltages keeps every core's steady state at or below Tmax, so the floor
// is feasible whenever the platform admits any useful plan at all.
//
// SafeFloor never observes the problem's context: it is what the anytime
// chain falls back to AFTER a deadline, so it must complete even under an
// already-expired Ctx (the solve is two linear evaluations — microseconds,
// not a search). The result is tagged DegradedFallback; callers are
// expected to re-check its peak with the independent oracle before
// serving it (internal/verify via Platform.Audit — verify cannot be
// imported from here without a cycle).
//
// Typed refusals instead of useless plans:
//
//   - the rounded assignment still violates Tmax (only possible with
//     DisallowOff, which pins cores at the lowest level): ErrInfeasible;
//   - every core rounds to off (Tmax ≈ ambient — "all modes too hot"),
//     so the plan would idle the chip: ErrInfeasible.
func SafeFloor(p Problem) (*Result, error) {
	p.Ctx = nil // the floor must complete even under an expired deadline
	res, err := LNS(p)
	if err != nil {
		return nil, err
	}
	if !res.Feasible {
		return nil, fmt.Errorf("%w: constant safe floor peaks %.3f K above ambient against a budget of %.3f K",
			ErrInfeasible, res.PeakRise, p.Model.Rise(p.TmaxC))
	}
	if res.Throughput <= 0 {
		return nil, fmt.Errorf("%w: all modes too hot at Tmax %.2f °C — the safe floor shuts every core down",
			ErrInfeasible, p.TmaxC)
	}
	res.Degraded = DegradedFallback
	return res, nil
}
