package solver

import (
	"time"

	"thermosc/internal/mat"
	"thermosc/internal/power"
	"thermosc/internal/schedule"
)

func now() time.Time                  { return time.Now() }
func since(t time.Time) time.Duration { return time.Since(t) }

// LNS implements the lower-neighboring-speed baseline (§III): compute the
// ideal continuous voltages, round each down to the nearest available
// discrete level, and run every core at that constant mode.
func LNS(p Problem) (*Result, error) {
	p, err := p.withDefaults()
	if err != nil {
		return nil, err
	}
	start := now()
	volts, err := IdealVoltages(p.Model, p.tmaxRise(), p.Levels.Max())
	if err != nil {
		return nil, err
	}
	modes := make([]power.Mode, len(volts))
	for i, v := range volts {
		if v < p.Levels.Min() {
			// Rounding DOWN below the lowest level means shutting the
			// core off — unless shutdown is disallowed, in which case the
			// nearest (lowest) level is used even though it may violate
			// the threshold (reported through Feasible).
			if p.DisallowOff {
				modes[i] = power.NewMode(p.Levels.Min())
			} else {
				modes[i] = power.ModeOff
			}
			continue
		}
		modes[i] = power.NewMode(p.Levels.LowerNeighbor(v))
	}
	sched := schedule.Constant(p.BasePeriod, modes)
	peak, _ := mat.VecMax(p.Model.SteadyStateCores(modes))
	return &Result{
		Name:       "LNS",
		Schedule:   sched,
		Throughput: sched.Throughput(),
		PeakRise:   peak,
		M:          1,
		Feasible:   peak <= p.tmaxRise()+feasTol,
		Elapsed:    since(start),
		Evals:      2,
	}, nil
}
