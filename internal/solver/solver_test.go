package solver

import (
	"math"
	"testing"

	"thermosc/internal/mat"
	"thermosc/internal/power"
	"thermosc/internal/sim"
	"thermosc/internal/thermal"
)

func problem(t testing.TB, rows, cols, levels int, tmaxC float64) Problem {
	t.Helper()
	md, err := thermal.Default(rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := power.PaperLevels(levels)
	if err != nil {
		t.Fatal(err)
	}
	return Problem{
		Model:    md,
		Levels:   ls,
		TmaxC:    tmaxC,
		Overhead: power.DefaultOverhead(),
	}
}

func TestProblemValidation(t *testing.T) {
	if _, err := (Problem{}).withDefaults(); err == nil {
		t.Fatal("nil model must error")
	}
	p := problem(t, 2, 1, 2, 65)
	p.TmaxC = 20 // below ambient
	if _, err := LNS(p); err == nil {
		t.Fatal("Tmax below ambient must error")
	}
	p = problem(t, 2, 1, 2, 65)
	p.TUnitFrac = 0.9
	if _, err := AO(p); err == nil {
		t.Fatal("bad TUnitFrac must error")
	}
}

func TestIdealVoltagesShape3x1(t *testing.T) {
	md, err := thermal.Default(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	volts, err := IdealVoltages(md, 30, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: [1.2085, 1.1748, 1.2085] — we require the same shape: ends
	// symmetric, middle strictly lower, all within the plausible band.
	if math.Abs(volts[0]-volts[2]) > 1e-6 {
		t.Fatalf("end cores not symmetric: %v", volts)
	}
	if volts[1] >= volts[0] {
		t.Fatalf("middle core should need a lower voltage: %v", volts)
	}
	for _, v := range volts {
		if v < 1.0 || v > 1.3 {
			t.Fatalf("ideal voltage %v outside calibrated band: %v", v, volts)
		}
	}
	// Running the ideal voltages must hit Tmax exactly (steady state).
	modes := make([]power.Mode, 3)
	for i, v := range volts {
		modes[i] = power.NewMode(v)
	}
	temps := md.SteadyStateCores(modes)
	for i, rise := range temps {
		if math.Abs(rise-30) > 1e-6 {
			t.Fatalf("core %d steady rise %v, want 30", i, rise)
		}
	}
}

func TestIdealVoltagesCapped(t *testing.T) {
	md, err := thermal.Default(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A huge budget caps at vcap.
	volts, err := IdealVoltages(md, 200, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range volts {
		if v != 1.3 {
			t.Fatalf("expected cap at 1.3: %v", volts)
		}
	}
	if _, err := IdealVoltages(md, -1, 1.3); err == nil {
		t.Fatal("negative budget must error")
	}
}

func TestLNSMatchesPaperMotivation(t *testing.T) {
	// 3×1, 2 levels, Tmax=65: LNS rounds everything down to 0.6 V and
	// achieves throughput 0.6 (paper §III).
	p := problem(t, 3, 1, 2, 65)
	res, err := LNS(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Throughput-0.6) > 1e-9 {
		t.Fatalf("LNS throughput = %v, want 0.6", res.Throughput)
	}
	if !res.Feasible {
		t.Fatal("LNS must be feasible here")
	}
	for _, m := range modesOf(res.Schedule) {
		if m.Voltage != 0.6 {
			t.Fatalf("LNS modes = %v", modesOf(res.Schedule))
		}
	}
}

func TestEXSMatchesNaive(t *testing.T) {
	for _, cfg := range []struct {
		rows, cols, levels int
		tmax               float64
	}{
		{2, 1, 2, 65}, {3, 1, 2, 65}, {3, 1, 3, 55}, {2, 1, 5, 60}, {3, 2, 2, 55},
	} {
		p := problem(t, cfg.rows, cfg.cols, cfg.levels, cfg.tmax)
		fast, err := EXS(p)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := EXSNaive(p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fast.Throughput-naive.Throughput) > 1e-9 {
			t.Fatalf("%+v: EXS %v != naive %v", cfg, fast.Throughput, naive.Throughput)
		}
		if fast.Feasible != naive.Feasible {
			t.Fatalf("%+v: feasibility mismatch", cfg)
		}
		if fast.Evals >= naive.Evals {
			t.Logf("%+v: pruning did not reduce evals (%d vs %d)", cfg, fast.Evals, naive.Evals)
		}
	}
}

func TestEXSBeatsOrMatchesLNS(t *testing.T) {
	for _, levels := range []int{2, 3, 4, 5} {
		p := problem(t, 3, 1, levels, 65)
		lns, err := LNS(p)
		if err != nil {
			t.Fatal(err)
		}
		exs, err := EXS(p)
		if err != nil {
			t.Fatal(err)
		}
		if exs.Throughput < lns.Throughput-1e-9 {
			t.Fatalf("levels=%d: EXS %v < LNS %v", levels, exs.Throughput, lns.Throughput)
		}
		if !exs.Feasible {
			t.Fatalf("levels=%d: EXS infeasible", levels)
		}
	}
}

func TestEXSTightThreshold(t *testing.T) {
	// Tmax barely above ambient: even all-0.6 V overheats. With the
	// paper's inactive mode available, EXS degrades to shutting every
	// core off (feasible, zero throughput)...
	p := problem(t, 3, 1, 2, 38)
	res, err := EXS(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("all-off must be feasible")
	}
	if res.Throughput != 0 {
		t.Fatalf("expected zero throughput, got %v", res.Throughput)
	}
	// ...and with shutdown disallowed the instance is infeasible.
	p.DisallowOff = true
	res, err = EXS(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatalf("expected infeasible, got throughput %v", res.Throughput)
	}
	if res.Schedule != nil {
		t.Fatal("infeasible result must carry no schedule")
	}
	// The naive enumeration agrees on both counts.
	naive, err := EXSNaive(p)
	if err != nil {
		t.Fatal(err)
	}
	if naive.Feasible {
		t.Fatal("naive should also be infeasible with shutdown disallowed")
	}
}

func TestCoreShutdownEnablesTightThresholds(t *testing.T) {
	// The 9-core platform at Tmax = 50 °C cannot run all cores even at
	// the lowest level (the Fig. 7 corner); shutting cores down restores
	// feasibility with nonzero throughput for EXS and AO.
	p := problem(t, 3, 3, 2, 50)
	exs, err := EXS(p)
	if err != nil {
		t.Fatal(err)
	}
	if !exs.Feasible || exs.Throughput <= 0 {
		t.Fatalf("EXS with shutdown: feasible=%v thr=%v", exs.Feasible, exs.Throughput)
	}
	ao, err := AO(p)
	if err != nil {
		t.Fatal(err)
	}
	if !ao.Feasible {
		t.Fatalf("AO with off-oscillation should be feasible, peak %.3f", ao.PeakRise)
	}
	if ao.Throughput < exs.Throughput-1e-6 {
		t.Fatalf("AO %v below EXS %v", ao.Throughput, exs.Throughput)
	}
}

func TestNeighborSpecsOffOscillation(t *testing.T) {
	ls := power.MustLevelSet(0.6, 1.3)
	specs := neighborSpecs(ls, []float64{0.45}, true)
	// Below-floor ideals pair "off" with the lowest level and start at
	// the optimistic constant-min point (RH = 1); the TPT reduction cuts
	// from there as the thermal budget requires.
	if !specs[0].Low.IsOff() || specs[0].High.Voltage != 0.6 {
		t.Fatalf("wrong modes: %+v", specs[0])
	}
	if specs[0].RH != 1 {
		t.Fatalf("expected optimistic RH=1 start: %+v", specs[0])
	}
	// Without the inactive mode the core is pinned to the lowest level.
	pinned := neighborSpecs(ls, []float64{0.45}, false)
	if pinned[0].oscillating() || pinned[0].Low.Voltage != 0.6 {
		t.Fatalf("pinned spec wrong: %+v", pinned[0])
	}
}

func TestAOFeasibleAndBeatsEXS(t *testing.T) {
	for _, cfg := range []struct {
		rows, cols, levels int
	}{
		{2, 1, 2}, {3, 1, 2}, {3, 1, 3}, {3, 2, 2},
	} {
		p := problem(t, cfg.rows, cfg.cols, cfg.levels, 65)
		ao, err := AO(p)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if !ao.Feasible {
			t.Fatalf("%+v: AO infeasible with peak %.3f", cfg, ao.PeakRise)
		}
		exs, err := EXS(p)
		if err != nil {
			t.Fatal(err)
		}
		if ao.Throughput < exs.Throughput-1e-6 {
			t.Fatalf("%+v: AO %v below EXS %v", cfg, ao.Throughput, exs.Throughput)
		}
		// Verify the claimed peak independently with a dense search on
		// the returned schedule. The claim certifies the EXECUTED
		// timeline (emitted + transition windows), so the bare emitted
		// schedule must be at or slightly below it.
		stable, err := sim.NewStable(p.Model, ao.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		peak, _, _ := stable.PeakDense(32)
		if peak > p.tmaxRise()+1e-4 {
			t.Fatalf("%+v: AO schedule actually peaks at %.4f K rise", cfg, peak)
		}
		if peak > ao.PeakRise+1e-4 {
			t.Fatalf("%+v: emitted peak %.5f above the certified executed peak %.5f", cfg, peak, ao.PeakRise)
		}
		if ao.PeakRise-peak > 0.3 {
			t.Fatalf("%+v: transition-window margin implausibly large: %.5f vs %.5f", cfg, ao.PeakRise, peak)
		}
	}
}

func TestAOBoundedByIdeal(t *testing.T) {
	p := problem(t, 3, 1, 2, 65)
	ao, err := AO(p)
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := Ideal(p)
	if err != nil {
		t.Fatal(err)
	}
	if ao.Throughput > ideal.Throughput+1e-9 {
		t.Fatalf("AO %v exceeds the continuous ideal %v", ao.Throughput, ideal.Throughput)
	}
}

func TestAOZeroOverheadUsesLargeM(t *testing.T) {
	// Tmax = 60 °C keeps the 2×1 ideal voltages strictly inside the
	// (0.6 V, 1.3 V) band so both cores actually oscillate.
	p := problem(t, 2, 1, 2, 60)
	p.Overhead = power.TransitionOverhead{} // free transitions
	p.MaxM = 64
	ao, err := AO(p)
	if err != nil {
		t.Fatal(err)
	}
	// With free transitions the peak decreases monotonically in m
	// (Theorem 5), so the search should run to the cap.
	if ao.M != 64 {
		t.Fatalf("AO chose m=%d, want the cap 64", ao.M)
	}
	if !ao.Feasible {
		t.Fatal("AO must be feasible")
	}
}

func TestAOOverheadLimitsM(t *testing.T) {
	p := problem(t, 2, 1, 2, 65)
	p.Overhead = power.TransitionOverhead{Tau: 200e-6} // brutal 200 µs stalls
	p.MaxM = 4096
	ao, err := AO(p)
	if err != nil {
		t.Fatal(err)
	}
	if ao.M > 40 {
		t.Fatalf("AO chose m=%d despite heavy overhead", ao.M)
	}
}

func TestPCOAtLeastAsGoodAsAO(t *testing.T) {
	for _, cfg := range []struct {
		rows, cols, levels int
	}{
		{2, 1, 2}, {3, 1, 2},
	} {
		p := problem(t, cfg.rows, cfg.cols, cfg.levels, 65)
		ao, err := AO(p)
		if err != nil {
			t.Fatal(err)
		}
		pco, err := PCO(p)
		if err != nil {
			t.Fatal(err)
		}
		if !pco.Feasible {
			t.Fatalf("%+v: PCO infeasible", cfg)
		}
		if pco.Throughput < ao.Throughput-1e-6 {
			t.Fatalf("%+v: PCO %v below AO %v", cfg, pco.Throughput, ao.Throughput)
		}
		// Independent dense verification of the returned schedule.
		stable, err := sim.NewStable(p.Model, pco.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		peak, _, _ := stable.PeakDense(48)
		if peak > p.tmaxRise()+0.05 {
			t.Fatalf("%+v: PCO schedule peaks at %.4f K rise (budget %.4f)", cfg, peak, p.tmaxRise())
		}
	}
}

func TestMotivationExampleOrdering(t *testing.T) {
	// The paper's §III story: on 3×1 with 2 levels at 65 °C,
	// LNS (0.6) < EXS (≈0.83) < AO two-mode oscillation (≈0.87+).
	p := problem(t, 3, 1, 2, 65)
	lns, _ := LNS(p)
	exs, _ := EXS(p)
	ao, err := AO(p)
	if err != nil {
		t.Fatal(err)
	}
	if !(lns.Throughput < exs.Throughput && exs.Throughput < ao.Throughput) {
		t.Fatalf("ordering violated: LNS %.4f, EXS %.4f, AO %.4f",
			lns.Throughput, exs.Throughput, ao.Throughput)
	}
	// AO's gain over LNS should be substantial (paper reports 45.42% for
	// the original period; shape, not exact value).
	if ao.Throughput/lns.Throughput < 1.2 {
		t.Fatalf("AO gain over LNS too small: %.4f vs %.4f", ao.Throughput, lns.Throughput)
	}
}

func TestNeighborSpecs(t *testing.T) {
	ls := power.MustLevelSet(0.6, 0.8, 1.3)
	specs := neighborSpecs(ls, []float64{0.7, 0.8, 1.25, 0, 0.5, 1.4}, false)
	// 0.7 → between 0.6 and 0.8, rH = 0.5.
	if !specs[0].oscillating() || math.Abs(specs[0].RH-0.5) > 1e-9 {
		t.Fatalf("spec0 = %+v", specs[0])
	}
	// 0.8 → exact level, constant.
	if specs[1].oscillating() || specs[1].Low.Voltage != 0.8 {
		t.Fatalf("spec1 = %+v", specs[1])
	}
	// 1.25 → between 0.8 and 1.3, rH = 0.9.
	if math.Abs(specs[2].RH-0.9) > 1e-9 {
		t.Fatalf("spec2 = %+v", specs[2])
	}
	// 0 → off.
	if !specs[3].Low.IsOff() || specs[3].oscillating() {
		t.Fatalf("spec3 = %+v", specs[3])
	}
	// Below min → clamps to min, constant.
	if specs[4].oscillating() || specs[4].Low.Voltage != 0.6 {
		t.Fatalf("spec4 = %+v", specs[4])
	}
	// Above max → clamps to max, constant.
	if specs[5].oscillating() || specs[5].Low.Voltage != 1.3 {
		t.Fatalf("spec5 = %+v", specs[5])
	}
	// Work preservation: spec speed equals the ideal voltage when inside
	// the range.
	if math.Abs(specs[0].speed()-0.7) > 1e-9 {
		t.Fatalf("spec0 speed = %v", specs[0].speed())
	}
}

func TestBuildCycleOverheadDegradation(t *testing.T) {
	specs := []coreSpec{{Low: power.NewMode(0.6), High: power.NewMode(1.3), RH: 0.5}}
	o := power.TransitionOverhead{Tau: 1e-3}
	// δ ≈ 2.71 ms; a 4 ms cycle cannot absorb 2δ ≈ 5.4 ms of extension,
	// so the core degrades to constant high.
	cyc, err := buildCycle(4e-3, specs, o, cycleThermal)
	if err != nil {
		t.Fatal(err)
	}
	if segs := cyc.CoreSegments(0); len(segs) != 1 || segs[0].Mode.Voltage != 1.3 {
		t.Fatalf("expected constant-high degradation, got %v", segs)
	}
	// A 1 s cycle absorbs the overhead: two segments, high slightly
	// extended past the nominal ratio.
	cyc, err = buildCycle(1.0, specs, o, cycleThermal)
	if err != nil {
		t.Fatal(err)
	}
	segs := cyc.CoreSegments(0)
	if len(segs) != 2 {
		t.Fatalf("expected two segments, got %v", segs)
	}
	if segs[1].Length <= 0.5 {
		t.Fatalf("high interval %v not extended beyond nominal 0.5 s", segs[1].Length)
	}
}

func TestResultPeakC(t *testing.T) {
	md, err := thermal.Default(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := &Result{PeakRise: 30}
	if r.PeakC(md) != 65 {
		t.Fatalf("PeakC = %v", r.PeakC(md))
	}
}

func TestIdealThroughputMatchesMeanVoltage(t *testing.T) {
	p := problem(t, 3, 1, 2, 65)
	res, err := Ideal(p)
	if err != nil {
		t.Fatal(err)
	}
	volts, err := IdealVoltages(p.Model, p.tmaxRise(), p.Levels.Max())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Throughput-mat.VecSum(volts)/3) > 1e-9 {
		t.Fatalf("Ideal throughput %v, volts %v", res.Throughput, volts)
	}
	if !res.Feasible {
		t.Fatal("ideal assignment must be feasible by construction")
	}
}
