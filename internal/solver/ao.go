package solver

import (
	"fmt"
	"math"
	"sync/atomic"

	"thermosc/internal/mat"
	"thermosc/internal/power"
	"thermosc/internal/schedule"
	"thermosc/internal/sim"
)

// coreSpec is the per-core two-neighboring-mode decomposition used by AO:
// the core runs Low for (1−RH)·cycle and High for RH·cycle (eq. (11)).
// A core whose ideal voltage coincides with a level has Low == High.
type coreSpec struct {
	Low, High power.Mode
	RH        float64
}

// oscillating reports whether the core actually switches modes.
func (c coreSpec) oscillating() bool {
	return c.High.Voltage > c.Low.Voltage && c.RH > 0 && c.RH < 1
}

// speed returns the core's nominal (useful-work) speed.
func (c coreSpec) speed() float64 {
	return (1-c.RH)*c.Low.Speed() + c.RH*c.High.Speed()
}

// neighborSpecs maps ideal continuous voltages to two-neighboring-mode
// specs per Theorem 4 and eq. (11). When allowOff is set (the paper's
// system model permits inactive cores), an ideal voltage below the lowest
// level oscillates between off and that level; otherwise the core is
// pinned to the lowest level constantly.
func neighborSpecs(levels *power.LevelSet, volts []float64, allowOff bool) []coreSpec {
	specs := make([]coreSpec, len(volts))
	for i, v := range volts {
		if v <= 0 {
			specs[i] = coreSpec{Low: power.ModeOff, High: power.ModeOff}
			continue
		}
		if v < levels.Min() && allowOff {
			// The core's neighboring modes are "off" and the lowest
			// level. Start optimistically at the constant lowest level
			// (RH = 1): the ideal-pinned voltage assumes EVERY core sits
			// exactly at Tmax, which underestimates what a discrete
			// assignment can sustain when its neighbors run cooler than
			// Tmax. The TPT reduction then cuts RH toward shutdown only
			// as far as the verified peak requires.
			specs[i] = coreSpec{
				Low:  power.ModeOff,
				High: power.NewMode(levels.Min()),
				RH:   1,
			}
			continue
		}
		lo, hi := levels.Neighbors(v)
		if hi <= lo {
			specs[i] = coreSpec{Low: power.NewMode(lo), High: power.NewMode(lo)}
			continue
		}
		rH := (v - lo) / (hi - lo)
		if rH < 1e-12 {
			rH = 0
		}
		if rH > 1-1e-12 {
			rH = 1
		}
		specs[i] = coreSpec{Low: power.NewMode(lo), High: power.NewMode(hi), RH: rH}
	}
	return specs
}

// buildCycleKind selects which of the two views of one oscillation cycle
// buildCycle constructs.
type buildCycleKind int

const (
	// cycleEmit is the schedule the platform driver programs: high
	// intervals extended by 2δ_i per cycle so the useful work survives
	// the two transition stalls (§V).
	cycleEmit buildCycleKind = iota
	// cycleThermal is the peak-evaluation view: cycleEmit plus one extra
	// τ of high-voltage time. Executing cycleEmit turns the first τ of
	// the low interval into a stall burning at the high voltage (the rail
	// settles from v_H — see internal/actuator); that executed timeline
	// is EXACTLY a time-rotation of cycleThermal, and stable-status peaks
	// are rotation-invariant, so evaluating cycleThermal certifies the
	// executed schedule. The paper's accounting omits this window; the
	// actuation experiment exposed the ~0.3 K gap.
	cycleThermal
)

// buildCycle constructs one oscillation cycle of length tc in the
// requested view. When the overhead extension no longer fits in the cycle
// (m beyond the core's bound, or a near-1 high ratio), the core degrades
// to a constant high-mode segment — thermally conservative, and the TPT
// adjustment phase will cool it back into the oscillating regime. The
// degradation decision uses the thermal view so both views stay
// structurally consistent.
func buildCycle(tc float64, specs []coreSpec, o power.TransitionOverhead, kind buildCycleKind) (*schedule.Schedule, error) {
	tms := make([]schedule.TwoModeSpec, len(specs))
	fillTwoModeSpecs(tms, specs, o, tc, kind)
	return schedule.TwoMode(tc, tms)
}

// fillTwoModeSpecs writes buildCycle's per-core two-mode decomposition
// into tms without constructing a Schedule — the arena evaluation path
// feeds these directly to sim.EvalArena.SetTwoMode.
func fillTwoModeSpecs(tms []schedule.TwoModeSpec, specs []coreSpec, o power.TransitionOverhead, tc float64, kind buildCycleKind) {
	for i, c := range specs {
		eff := c.RH
		if c.oscillating() && o.Tau > 0 {
			effThermal := c.RH + (2*o.Delta(c.High.Voltage, c.Low.Voltage)+o.Tau)/tc
			if effThermal >= 1 || (1-effThermal)*tc < 2*o.Tau {
				eff = 1 // overhead does not fit: run constant high
			} else if kind == cycleThermal {
				eff = effThermal
			} else {
				eff = c.RH + 2*o.Delta(c.High.Voltage, c.Low.Voltage)/tc
			}
		}
		tms[i] = schedule.TwoModeSpec{Low: c.Low, High: c.High, HighRatio: eff}
	}
}

// thermalTwoModeSpecs is fillTwoModeSpecs pinned to the thermal view — the
// only view the inner evaluation loops ever score.
func thermalTwoModeSpecs(tms []schedule.TwoModeSpec, specs []coreSpec, o power.TransitionOverhead, tc float64) {
	fillTwoModeSpecs(tms, specs, o, tc, cycleThermal)
}

// nominalThroughput is the chip-wide useful throughput of the specs
// (excluding overhead padding, which preserves work by construction).
func nominalThroughput(specs []coreSpec) float64 {
	var s float64
	for _, c := range specs {
		s += c.speed()
	}
	return s / float64(len(specs))
}

// maxAdjustIter caps the TPT/refill adjustment budget regardless of the
// configured quantum: each iteration moves at least one core by one
// ratio step, so a budget past cores × ⌈1/dr⌉ is unreachable, and a
// quantum tiny enough to want more than this cap would stall the search
// long before converging.
const maxAdjustIter = 1 << 22

// adjustmentBudget bounds the number of ratio-adjustment iterations for
// n cores at quantum dr. The arithmetic stays in float space until the
// clamp: with a subnormal (or accidentally zero/NaN) dr the old
// `n*int(math.Ceil(1/dr))+10` overflowed int and could go negative,
// silently skipping the adjustment loops entirely.
func adjustmentBudget(n int, dr float64) (int, error) {
	if math.IsNaN(dr) || dr <= 0 {
		return 0, fmt.Errorf("solver: adjustment quantum %v is not positive", dr)
	}
	iters := float64(n) * math.Ceil(1/dr)
	if iters >= maxAdjustIter {
		return maxAdjustIter, nil
	}
	return int(iters) + 10, nil
}

// aoState carries the internals of an AO run so PCO can continue from it.
type aoState struct {
	specs []coreSpec
	m     int
	tc    float64
	eng   *sim.Engine
	cache *sim.PeriodCache
	peak  float64
	hot   int
	evals int64
	// degraded, when set, marks this state as a deadline-truncated
	// best-so-far; mEvaluated records how many m candidates the m-search
	// managed to evaluate.
	degraded   DegradedReason
	mEvaluated int
}

// degrade tags the state with the FIRST truncation reason observed — the
// earliest phase to hit the deadline is the most informative one.
func (st *aoState) degrade(r DegradedReason) {
	if st.degraded == DegradedNone {
		st.degraded = r
	}
}

// AO runs Algorithm 2 and returns the aligned m-oscillating schedule.
func AO(p Problem) (*Result, error) {
	p, err := p.withDefaults()
	if err != nil {
		return nil, err
	}
	start := now()
	st, err := runAO(p)
	if err != nil {
		return nil, err
	}
	cyc, err := buildCycle(st.tc, st.specs, p.Overhead, cycleEmit)
	if err != nil {
		return nil, err
	}
	return &Result{
		Name:       "AO",
		Schedule:   cyc,
		Throughput: nominalThroughput(st.specs),
		PeakRise:   st.peak,
		M:          st.m,
		Feasible:   st.peak <= p.tmaxRise()+feasTol,
		Elapsed:    since(start),
		Evals:      st.evals,
		Degraded:   st.degraded,
		MEvaluated: st.mEvaluated,
	}, nil
}

// runAO executes Algorithm 2 from two starting points and keeps the
// better feasible outcome:
//
//  1. the paper's ideal-pinned start (continuous voltages with every
//     core's T∞ at Tmax, split into neighboring modes by eq. (11));
//  2. an EXS-anchored start: the optimal constant discrete assignment,
//     with each core paired to the next level up for headroom refill.
//
// Seed 2 exists because the ideal-pinned start is not always the discrete
// optimum (EXPERIMENTS.md, finding 3): when some ideal voltages fall
// below the lowest level (many cores, tight budgets, 3D stacks), the
// greedy TPT reduction from seed 1 can converge to an allocation worse
// than the best constant assignment. Oscillating on top of that constant
// assignment — exactly the paper's §III motivation narrative — restores
// AO ≥ EXS.
func runAO(p Problem) (*aoState, error) {
	md := p.Model
	tmax := p.tmaxRise()
	volts, err := IdealVoltages(md, tmax, p.Levels.Max())
	if err != nil {
		return nil, err
	}
	// One evaluation engine per run — or the caller-shared one from
	// Problem.Engine: both seeds, the m-search, the TPT loops and PCO's
	// continuation share its propagator cache and period operator pool
	// (the two seeds scan the same tc = tp/m grid). A server handling
	// concurrent Maximize calls passes one engine per platform so all
	// in-flight solves share a single pool.
	eng := p.engine()
	idealSpecs := neighborSpecs(p.Levels, volts, !p.DisallowOff)
	if md.SparsePath() {
		// At scale the ideal-pinned start can be infeasible by a distance
		// the one-quantum TPT loop cannot cover; back it off to a
		// near-feasible scaled seed first (see scale.go).
		idealSpecs, err = sparseFeasibleSeed(p, eng, volts)
		if err != nil {
			return nil, err
		}
	}
	best, err := optimizeSpecs(p, eng, idealSpecs, 0)
	if err != nil {
		return nil, err
	}

	// Seed 2 is only worth running when seed 1 finished intact — a
	// deadline that already truncated the first optimization leaves no
	// budget for another full pass. The sparse backend skips it outright:
	// at hundreds of cores the EXS branch-and-bound plus a second full
	// optimization pass would dominate the whole deadline budget for a
	// start the scale-policy pruning handles from seed 1 anyway.
	if best.degraded == DegradedNone && !md.SparsePath() {
		exsSpecs, exsEvals, ok := exsSeedSpecs(p)
		if ok {
			alt, altErr := optimizeSpecs(p, eng, exsSpecs, best.m)
			if altErr == nil {
				alt.evals += exsEvals
				tainted := alt.degraded != DegradedNone
				best = betterState(p, best, alt)
				if tainted {
					// The alt branch was itself truncated: whichever state
					// won, the two-seed comparison is timing-dependent.
					best.degrade(DegradedAltSeed)
				}
			}
		}
		// Any deadline observed here means the alt path may have been
		// silently skipped or cut short (EXS truncated, the alt optimize
		// aborted, or a cancel between the seeds). The plan itself is
		// still thermally valid — tag it Degraded instead of refusing, and
		// rely on callers keeping degraded plans out of determinism-keyed
		// caches.
		if err := p.ctxErr(); err != nil {
			best.degrade(DegradedAltSeed)
		}
	}
	return best, nil
}

// betterState prefers feasible states, then higher nominal throughput.
func betterState(p Problem, a, b *aoState) *aoState {
	tmax := p.tmaxRise()
	aOK := a.peak <= tmax+feasTol
	bOK := b.peak <= tmax+feasTol
	switch {
	case aOK && !bOK:
		b.evals += a.evals // keep the full accounting on the winner
		a.evals = b.evals
		return a
	case bOK && !aOK:
		b.evals += a.evals
		return b
	case nominalThroughput(b.specs) > nominalThroughput(a.specs):
		b.evals += a.evals
		return b
	default:
		a.evals += b.evals
		return a
	}
}

// exsSeedSpecs converts the optimal constant assignment into oscillation
// specs anchored at each core's EXS level, paired with the next level up.
// The parallel branch-and-bound keeps the seed cheap on large grids,
// where the sequential search's subtree count explodes.
func exsSeedSpecs(p Problem) ([]coreSpec, int64, bool) {
	res, err := EXSParallel(p, 0)
	if err != nil || !res.Feasible || res.Schedule == nil || res.Degraded != DegradedNone {
		if res != nil {
			return nil, res.Evals, false
		}
		return nil, 0, false
	}
	volts := p.Levels.Voltages()
	specs := make([]coreSpec, p.Model.NumCores())
	for i := range specs {
		m := res.Schedule.ModeAt(i, 0)
		switch {
		case m.IsOff():
			specs[i] = coreSpec{Low: power.ModeOff, High: power.NewMode(p.Levels.Min()), RH: 0}
		default:
			// Pair with the next level up (or stay constant at the top).
			next := m.Voltage
			for _, v := range volts {
				if v > m.Voltage+1e-12 {
					next = v
					break
				}
			}
			specs[i] = coreSpec{Low: m, High: power.NewMode(next), RH: 0}
		}
	}
	return specs, res.Evals, true
}

// optimizeSpecs runs phases 2 and 3 of Algorithm 2 on the given starting
// specs: the m search (skipped when forceM > 0) followed by TPT-guided
// ratio reduction, headroom refill, and dense verification. The candidate
// scans — m values in phase 2, per-core ratio trials in phase 3 — fan out
// across p.Workers goroutines sharing eng's caches; reductions scan
// candidates in sequential order, so every worker count yields the same
// plan bit for bit.
func optimizeSpecs(p Problem, eng *sim.Engine, specs []coreSpec, forceM int) (*aoState, error) {
	md := p.Model
	tmax := p.tmaxRise()
	tp := p.BasePeriod
	workers := p.workers()
	specs = append([]coreSpec(nil), specs...)

	// Scale policy (nil on the dense backend): on large sparse platforms
	// the per-iteration trial scans evaluate only the top-ranked candidate
	// cores instead of all of them (see scale.go). allJ is the identity
	// candidate list the dense path scans — same indices, same order, same
	// arithmetic as the historic exhaustive loop.
	pol := newScalePolicy(md)
	allJ := make([]int, len(specs))
	for j := range allJ {
		allJ[j] = j
	}
	canCool := func(j int) bool {
		c := specs[j]
		return c.High.Voltage > c.Low.Voltage && c.RH > 0
	}
	canRaise := func(j int) bool {
		c := specs[j]
		return c.High.Voltage > c.Low.Voltage && c.RH < 1
	}

	// Chip-wide oscillation bound M = min_i M_i (§V).
	m := p.MaxM
	anyOsc := false
	for _, c := range specs {
		if !c.oscillating() {
			continue
		}
		anyOsc = true
		tL := (1 - c.RH) * tp
		if mi := p.Overhead.MaxM(tL, c.High.Voltage, c.Low.Voltage); mi < m {
			m = mi
		}
	}
	if !anyOsc {
		m = 1
	}
	if forceM > 0 {
		m = forceM
	}

	// Per-worker arena scratch for the incremental evaluation path; the
	// classic reference path (Problem.ClassicEval) allocates per
	// evaluation instead, exactly as the pre-arena code did.
	var wa *workerArenas
	if !p.ClassicEval {
		wa = newWorkerArenas(eng, workers, len(specs))
		defer wa.release()
	}

	// Phase 2: scan m ∈ [1, M] for the peak-minimizing oscillation count
	// (with overhead, the peak is no longer monotone in m). Candidates fan
	// out across the worker pool; the reduction keeps the smallest m with
	// the strictly lowest peak, exactly the sequential scan's choice.
	startM := 1
	if forceM > 0 {
		startM = forceM
	}
	ms, err := searchM(p, eng, specs, startM, m, wa)
	if err != nil {
		return nil, err
	}
	if ms.m == 0 {
		return nil, fmt.Errorf("solver: no feasible oscillation cycle for period %v", tp)
	}

	// Phase 3: TPT-guided ratio adjustment until the constraint holds.
	tc := tp / float64(ms.m)
	cache := ms.cache
	tUnit := p.TUnitFrac * tc
	dr := tUnit / tc // ratio change per adjustment quantum

	st := &aoState{specs: specs, m: ms.m, tc: tc, eng: eng, cache: cache,
		evals: ms.evals, mEvaluated: ms.evaluated}
	if ms.truncated {
		st.degrade(DegradedMSearch)
	}
	var cycleEvals atomic.Int64
	// evalTempsInto writes the stable end-of-cycle core temperature rises
	// of sp into dst — by Theorem 1 their maximum is the schedule's peak
	// temperature. w selects the calling worker's private arena scratch
	// (ignored by the classic path); both paths produce bit-identical
	// temperatures. Safe for concurrent trials: arenas are per-worker, the
	// engine's caches synchronize internally, and the eval count is atomic.
	evalTempsInto := func(w int, dst []float64, sp []coreSpec) error {
		if p.ClassicEval {
			cyc, err := buildCycle(tc, sp, p.Overhead, cycleThermal)
			if err != nil {
				return err
			}
			cycleEvals.Add(1)
			stable, err := sim.NewStableCached(md, cyc, cache)
			if err != nil {
				return err
			}
			copy(dst, stable.End(stable.NumIntervals() - 1)[:len(dst)])
			return nil
		}
		a := wa.arenas[w]
		thermalTwoModeSpecs(wa.tms[w], sp, p.Overhead, tc)
		if err := a.SetTwoMode(tc, wa.tms[w]); err != nil {
			return err
		}
		cycleEvals.Add(1)
		return a.StableEndTempsInto(dst, cache)
	}
	// trialSpecs substitutes core j's ratio through worker w's spec buffer
	// (or a fresh copy on the classic path).
	trialSpecs := func(w int, sp []coreSpec, j int, rh float64) []coreSpec {
		if p.ClassicEval {
			return withRH(sp, j, rh)
		}
		return wa.withRHInto(w, sp, j, rh)
	}

	temps := make([]float64, len(specs))
	if err := evalTempsInto(0, temps, specs); err != nil {
		return nil, err
	}
	peak, hot := mat.VecMax(temps)
	maxIter, err := adjustmentBudget(len(specs), dr)
	if err != nil {
		return nil, err
	}
	trialTemps := make([][]float64, len(specs))
	trialBuf := make([][]float64, len(specs))
	for j := range trialBuf {
		trialBuf[j] = make([]float64, len(specs))
	}
	for iter := 0; peak > tmax+feasTol && iter < maxIter; iter++ {
		if err := p.ctxErr(); err != nil {
			// Anytime: keep the best-so-far specs instead of erroring. The
			// dense verification below still re-evaluates the final specs,
			// so the claimed peak stays exact even for the truncated plan.
			st.degrade(DegradedAdjust)
			break
		}
		// Algorithm 2 lines 15–20: pick the core whose slowdown most
		// effectively cools the hottest core per unit of throughput lost.
		// The per-core trial evaluations are independent; evaluate them
		// across the worker pool and reduce in candidate order. The dense
		// path trials every core; the sparse scale policy trials only the
		// top coolers ranked against the current hot node.
		cand := allJ
		if pol != nil {
			cand = pol.coolers(hot, specs, canCool)
		}
		for j := range trialTemps {
			trialTemps[j] = nil
		}
		parForW(workers, len(cand), func(w, k int) {
			j := cand[k]
			c := specs[j]
			if c.High.Voltage <= c.Low.Voltage || c.RH <= 0 {
				return
			}
			tsp := trialSpecs(w, specs, j, math.Max(0, c.RH-dr))
			if err := evalTempsInto(w, trialBuf[j], tsp); err != nil {
				return // skipped, like the sequential continue-on-error
			}
			trialTemps[j] = trialBuf[j]
		})
		bestJ, bestTPT := -1, math.Inf(-1)
		var bestTemps []float64
		for _, j := range cand {
			if trialTemps[j] == nil {
				continue
			}
			c := specs[j]
			deltaT := temps[hot] - trialTemps[j][hot]
			tpt := deltaT / ((c.High.Voltage - c.Low.Voltage) * tUnit)
			if tpt > bestTPT {
				bestJ, bestTPT = j, tpt
				bestTemps = trialTemps[j]
			}
		}
		if bestJ == -1 {
			break // nothing left to slow down
		}
		specs[bestJ].RH = math.Max(0, specs[bestJ].RH-dr)
		copy(temps, bestTemps) // trial rows are reused next iteration
		peak, hot = mat.VecMax(temps)
	}

	// Headroom refill — the dual of the TPT reduction. The ideal-pinned
	// starting point maximizes throughput only when every core's steady
	// temperature can actually sit at Tmax; with coarse level sets the
	// discrete schedule may converge strictly below the budget (e.g. the
	// 9-core platform at Tmax = 55 °C, where the uniform lowest level is
	// feasible outright). Greedily raise the high-mode ratio with the
	// best throughput-gain-per-Kelvin while the peak stays under the
	// budget minus a small guard band (absorbing the constant-core
	// overshoot documented on sim.Stable.PeakEndOfPeriod).
	const refillGuard = 0.05
	refillMax := maxIter
	if pol != nil {
		// Each sparse refill iteration costs sparseTrialCap exact stable
		// evaluations; bound the polish so it cannot eat the deadline.
		refillMax = sparseRefillIters
	}
	for iter := 0; peak < tmax-refillGuard && iter < refillMax; iter++ {
		if err := p.ctxErr(); err != nil {
			st.degrade(DegradedRefill)
			break
		}
		cand := allJ
		if pol != nil {
			cand = pol.refillers(hot, specs, canRaise)
		}
		for j := range trialTemps {
			trialTemps[j] = nil
		}
		parForW(workers, len(cand), func(w, k int) {
			j := cand[k]
			c := specs[j]
			if c.High.Voltage <= c.Low.Voltage || c.RH >= 1 {
				return
			}
			tsp := trialSpecs(w, specs, j, math.Min(1, c.RH+dr))
			if err := evalTempsInto(w, trialBuf[j], tsp); err != nil {
				return
			}
			trialTemps[j] = trialBuf[j]
		})
		bestJ, bestScore := -1, 0.0
		var bestTemps []float64
		for _, j := range cand {
			c := specs[j]
			if trialTemps[j] == nil {
				continue
			}
			trialPeak, _ := mat.VecMax(trialTemps[j])
			if trialPeak > tmax-refillGuard+feasTol {
				continue
			}
			gain := (c.High.Voltage - c.Low.Voltage) * (math.Min(1, c.RH+dr) - c.RH)
			score := gain / math.Max(trialPeak-peak, 1e-9)
			if score > bestScore {
				bestJ, bestScore = j, score
				bestTemps = trialTemps[j]
			}
		}
		if bestJ == -1 {
			break
		}
		specs[bestJ].RH = math.Min(1, specs[bestJ].RH+dr)
		copy(temps, bestTemps)
		peak, hot = mat.VecMax(temps)
	}

	// Final verification with a dense peak search. The end-of-cycle value
	// used above is Theorem 1's peak, which is exact only when every core
	// strictly steps up; a constant-mode core can overshoot it slightly
	// just after the cycle wrap (see sim.Stable.PeakEndOfPeriod). If the
	// densely-verified peak still violates the budget, keep adjusting
	// under the dense metric.
	densePeakOf := func(w int, sp []coreSpec) (float64, error) {
		if p.ClassicEval {
			cyc, err := buildCycle(tc, sp, p.Overhead, cycleThermal)
			if err != nil {
				return math.Inf(1), err
			}
			cycleEvals.Add(1)
			stable, err := sim.NewStableCached(md, cyc, cache)
			if err != nil {
				return math.Inf(1), err
			}
			dp, _, _ := stable.PeakDense(p.PeakSamples)
			return dp, nil
		}
		a := wa.arenas[w]
		thermalTwoModeSpecs(wa.tms[w], sp, p.Overhead, tc)
		if err := a.SetTwoMode(tc, wa.tms[w]); err != nil {
			return math.Inf(1), err
		}
		cycleEvals.Add(1)
		return a.StableDensePeak(cache, p.PeakSamples)
	}
	dense, err := densePeakOf(0, specs)
	if err != nil {
		return nil, err
	}
	densePeaks := make([]float64, len(specs))
	for iter := 0; dense > tmax+feasTol && iter < maxIter; iter++ {
		if err := p.ctxErr(); err != nil {
			st.degrade(DegradedDense)
			break
		}
		cand := allJ
		if pol != nil {
			cand = pol.coolers(hot, specs, canCool)
		}
		for j := range densePeaks {
			densePeaks[j] = math.Inf(1)
		}
		parForW(workers, len(cand), func(w, k int) {
			j := cand[k]
			c := specs[j]
			if c.High.Voltage <= c.Low.Voltage || c.RH <= 0 {
				return
			}
			dp, err := densePeakOf(w, trialSpecs(w, specs, j, math.Max(0, c.RH-dr)))
			if err != nil {
				return
			}
			densePeaks[j] = dp
		})
		bestJ, bestPeak := -1, math.Inf(1)
		for _, j := range cand {
			if dp := densePeaks[j]; dp < bestPeak {
				bestJ, bestPeak = j, dp
			}
		}
		if bestJ == -1 {
			break
		}
		specs[bestJ].RH = math.Max(0, specs[bestJ].RH-dr)
		dense = bestPeak
	}
	peak = dense

	st.specs = specs
	st.peak = peak
	st.hot = hot
	st.evals += cycleEvals.Load()
	return st, nil
}
