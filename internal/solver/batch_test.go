package solver

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// A lone member dispatches after the window with no coalescing.
func TestBatcherSingleMember(t *testing.T) {
	b := NewBatcher(BatchConfig{Window: time.Millisecond, MaxBatch: 8})
	v, info, err := b.Do(context.Background(), "plat", "k", func() (any, error) { return 42, nil })
	if err != nil || v.(int) != 42 {
		t.Fatalf("got %v, %v", v, err)
	}
	if !info.Leader || info.Coalesced || info.Deduped || info.GroupSize != 1 {
		t.Fatalf("info %+v", info)
	}
	st := b.Stats()
	if st.GroupsFormed != 1 || st.Members != 1 || st.Coalesced != 0 || st.Deduped != 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.WindowWaitNs <= 0 || st.WindowWaitMaxNs <= 0 {
		t.Fatalf("no window wait recorded: %+v", st)
	}
}

// Concurrent members with distinct keys share one group; the leader's
// work finishes before any follower's work starts.
func TestBatcherLeaderRunsFirst(t *testing.T) {
	b := NewBatcher(BatchConfig{Window: 50 * time.Millisecond, MaxBatch: 4})
	var started, finished atomic.Int32
	var violations atomic.Int64
	var wg sync.WaitGroup
	results := make([]BatchInfo, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, info, err := b.Do(context.Background(), "plat", fmt.Sprintf("k%d", i), func() (any, error) {
				// The first member to run is the leader; nobody else may
				// start until it has finished.
				if started.Add(1) > 1 && finished.Load() == 0 {
					violations.Add(1)
				}
				time.Sleep(time.Millisecond)
				finished.Add(1)
				return i, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = info
		}(i)
	}
	wg.Wait()
	if violations.Load() != 0 {
		t.Fatalf("%d followers ran before the leader finished", violations.Load())
	}
	leaders := 0
	for _, info := range results {
		if info.Leader {
			leaders++
		}
		if info.GroupSize != 4 {
			t.Fatalf("group size %d, want 4 (%+v)", info.GroupSize, info)
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders in one group", leaders)
	}
	st := b.Stats()
	if st.GroupsFormed != 1 || st.Members != 4 || st.Coalesced != 3 {
		t.Fatalf("stats %+v", st)
	}
}

// stricter leader-first ordering check: followers must observe the
// leader's side effect.
func TestBatcherLeaderOrdering(t *testing.T) {
	b := NewBatcher(BatchConfig{Window: 50 * time.Millisecond, MaxBatch: 3})
	var order []string
	var mu sync.Mutex
	var wg sync.WaitGroup
	run := func(key string) {
		defer wg.Done()
		_, _, err := b.Do(context.Background(), "g", key, func() (any, error) {
			mu.Lock()
			order = append(order, key)
			mu.Unlock()
			time.Sleep(5 * time.Millisecond) // leader dwell: overlaps would interleave here
			return key, nil
		})
		if err != nil {
			t.Error(err)
		}
	}
	wg.Add(3)
	leaderStarted := make(chan struct{})
	go func() {
		close(leaderStarted)
		run("a") // first joiner = leader
	}()
	<-leaderStarted
	time.Sleep(2 * time.Millisecond) // let "a" open the group
	go run("b")
	go run("c")
	wg.Wait()
	if len(order) != 3 || order[0] != "a" {
		t.Fatalf("dispatch order %v, want leader 'a' first", order)
	}
}

// Duplicate member keys collapse onto one execution and share its value.
func TestBatcherDedup(t *testing.T) {
	b := NewBatcher(BatchConfig{Window: 30 * time.Millisecond, MaxBatch: 8})
	var execs atomic.Int64
	var wg sync.WaitGroup
	const n = 6
	vals := make([]any, n)
	infos := make([]BatchInfo, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, info, err := b.Do(context.Background(), "plat", "same", func() (any, error) {
				execs.Add(1)
				time.Sleep(time.Millisecond)
				return "shared", nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i], infos[i] = v, info
		}(i)
	}
	wg.Wait()
	if got := execs.Load(); got != 1 {
		t.Fatalf("%d executions for one member key, want 1", got)
	}
	dedups := 0
	for i := range vals {
		if vals[i] != "shared" {
			t.Fatalf("member %d got %v", i, vals[i])
		}
		if infos[i].Deduped {
			dedups++
		}
	}
	if dedups != n-1 {
		t.Fatalf("%d deduped members, want %d", dedups, n-1)
	}
	if st := b.Stats(); st.Deduped != n-1 {
		t.Fatalf("stats %+v", st)
	}
}

// MaxBatch seals a group early: a full group dispatches without waiting
// out the window.
func TestBatcherMaxBatchSealsEarly(t *testing.T) {
	b := NewBatcher(BatchConfig{Window: 10 * time.Second, MaxBatch: 2})
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, _, err := b.Do(context.Background(), "g", fmt.Sprintf("k%d", i), func() (any, error) { return i, nil }); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("full group still waited %v (window 10s, max 2)", elapsed)
	}
}

// Different group keys never share a window or a leader.
func TestBatcherGroupsAreIndependent(t *testing.T) {
	b := NewBatcher(BatchConfig{Window: 20 * time.Millisecond, MaxBatch: 8})
	var wg sync.WaitGroup
	leaders := make([]bool, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, info, err := b.Do(context.Background(), fmt.Sprintf("plat%d", i), "k", func() (any, error) { return i, nil })
			if err != nil {
				t.Error(err)
			}
			leaders[i] = info.Leader
		}(i)
	}
	wg.Wait()
	if !leaders[0] || !leaders[1] {
		t.Fatalf("each group needs its own leader: %v", leaders)
	}
	if st := b.Stats(); st.GroupsFormed != 2 || st.Coalesced != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// A member whose context is already dead skips every wait and runs its
// work immediately — no window latency on a doomed request.
func TestBatcherDeadContextSkipsWaits(t *testing.T) {
	b := NewBatcher(BatchConfig{Window: 10 * time.Second, MaxBatch: 8})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	v, _, err := b.Do(ctx, "g", "k", func() (any, error) { return "ran", ctx.Err() })
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("dead-ctx member waited %v", elapsed)
	}
	if v != "ran" || !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, %v", v, err)
	}
}

// A duplicate whose executor finished with the EXECUTOR's context error
// falls back to its own work instead of inheriting someone else's
// deadline failure.
func TestBatcherDedupContextErrorFallsBack(t *testing.T) {
	b := NewBatcher(BatchConfig{Window: 20 * time.Millisecond, MaxBatch: 8})
	runnerCtx, runnerCancel := context.WithCancel(context.Background())
	runnerCancel() // the runner's request is already dead

	var wg sync.WaitGroup
	wg.Add(1)
	started := make(chan struct{})
	go func() {
		defer wg.Done()
		close(started)
		// Runner: returns its own ctx error.
		_, _, _ = b.Do(runnerCtx, "g", "k", func() (any, error) { return nil, runnerCtx.Err() })
	}()
	<-started
	time.Sleep(2 * time.Millisecond) // let the runner claim the key slot

	v, info, err := b.Do(context.Background(), "g", "k", func() (any, error) { return "own", nil })
	wg.Wait()
	if info.Deduped {
		t.Fatal("dup inherited a context-poisoned execution")
	}
	if v != "own" || err != nil {
		t.Fatalf("fallback got %v, %v", v, err)
	}
}

// A panicking member propagates its panic to its own caller, closes its
// execution slot, and duplicate waiters fall back to their own work.
func TestBatcherPanicPropagatesAndReleasesDups(t *testing.T) {
	b := NewBatcher(BatchConfig{Window: 20 * time.Millisecond, MaxBatch: 8})
	panicked := make(chan any, 1)
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { panicked <- recover() }()
		close(started)
		_, _, _ = b.Do(context.Background(), "g", "k", func() (any, error) { panic("solver bug") })
	}()
	<-started
	time.Sleep(2 * time.Millisecond)

	v, info, err := b.Do(context.Background(), "g", "k", func() (any, error) { return "fallback", nil })
	wg.Wait()
	if rec := <-panicked; rec != "solver bug" {
		t.Fatalf("leader recover: %v", rec)
	}
	if info.Deduped || v != "fallback" || err != nil {
		t.Fatalf("dup after panic: %v %v %+v", v, err, info)
	}
}

// Sequential groups on the same key: a sealed group never accepts late
// members; they open a fresh group.
func TestBatcherSequentialGroups(t *testing.T) {
	b := NewBatcher(BatchConfig{Window: time.Millisecond, MaxBatch: 8})
	for i := 0; i < 3; i++ {
		_, info, err := b.Do(context.Background(), "g", "k", func() (any, error) { return i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if !info.Leader {
			t.Fatalf("round %d joined a stale group", i)
		}
	}
	if st := b.Stats(); st.GroupsFormed != 3 {
		t.Fatalf("stats %+v", st)
	}
}
