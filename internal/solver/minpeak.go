package solver

import (
	"fmt"
	"math"
)

// MinPeak solves the dual problem: the lowest peak-temperature threshold
// at which AO still achieves the target chip-wide throughput, found by
// bisection on Tmax (AO's achieved throughput is monotone in the
// threshold). It returns the schedule at the minimal threshold and that
// threshold in °C, within tolK kelvins.
//
// This is the "peak temperature minimization" direction the paper's
// title pairs with throughput maximization: a designer with a fixed
// performance contract asks how cool the part can run (fan policy,
// reliability budget) rather than how fast it can go.
func MinPeak(p Problem, targetThroughput, tolK float64) (*Result, float64, error) {
	p, err := p.withDefaults()
	if err != nil {
		return nil, 0, err
	}
	if targetThroughput <= 0 {
		return nil, 0, fmt.Errorf("solver: non-positive target throughput %v", targetThroughput)
	}
	if targetThroughput > p.Levels.Max() {
		return nil, 0, fmt.Errorf("solver: target throughput %v exceeds the top speed %v",
			targetThroughput, p.Levels.Max())
	}
	if tolK <= 0 {
		tolK = 0.05
	}
	ambient := p.Model.Package().AmbientC

	achieves := func(tmaxC float64) (*Result, bool, error) {
		pp := p
		pp.TmaxC = tmaxC
		res, err := AO(pp)
		if err != nil {
			return nil, false, err
		}
		return res, res.Feasible && res.Throughput >= targetThroughput-1e-9, nil
	}

	// Find a feasible upper bracket by doubling the rise above ambient.
	lo := ambient + 0.5
	rise := 8.0
	var hiRes *Result
	hi := ambient + rise
	for {
		res, ok, err := achieves(hi)
		if err != nil {
			return nil, 0, err
		}
		if ok {
			hiRes = res
			break
		}
		rise *= 2
		hi = ambient + rise
		if rise > 400 {
			return nil, 0, fmt.Errorf("solver: target throughput %v unreachable below %.0f °C",
				targetThroughput, hi)
		}
	}

	// Bisect the minimal achievable threshold.
	for hi-lo > tolK {
		mid := 0.5 * (lo + hi)
		res, ok, err := achieves(mid)
		if err != nil {
			return nil, 0, err
		}
		if ok {
			hi, hiRes = mid, res
		} else {
			lo = mid
		}
	}
	if hiRes == nil || math.IsNaN(hi) {
		return nil, 0, fmt.Errorf("solver: bisection failed")
	}
	return hiRes, hi, nil
}
