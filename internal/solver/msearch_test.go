package solver

import (
	"context"
	"math"
	"testing"

	"thermosc/internal/power"
	"thermosc/internal/sim"
	"thermosc/internal/thermal"
)

func msearchProblem(t *testing.T) (Problem, *sim.Engine, []coreSpec) {
	t.Helper()
	md, err := thermal.Default(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := power.PaperLevels(2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Problem{Model: md, Levels: ls, TmaxC: 60, Overhead: power.DefaultOverhead()}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	specs := []coreSpec{
		{Low: power.NewMode(0.8), High: power.NewMode(1.1), RH: 0.4},
		{Low: power.NewMode(0.8), High: power.NewMode(1.1), RH: 0.6},
	}
	return p, sim.NewEngine(md), specs
}

// Every candidate the pool evaluated must be counted, and the count must
// not depend on the worker width.
func TestSearchMCountsEveryCandidate(t *testing.T) {
	p, eng, specs := msearchProblem(t)
	const maxM = 7
	var ref int64 = -1
	for _, workers := range []int{1, 4} {
		p.Workers = workers
		bestM, peak, cache, evals, err := searchM(p, eng, specs, 1, maxM)
		if err != nil {
			t.Fatal(err)
		}
		if bestM < 1 || math.IsInf(peak, 1) || cache == nil {
			t.Fatalf("workers=%d: degenerate result m=%d peak=%v", workers, bestM, peak)
		}
		if evals != maxM {
			t.Fatalf("workers=%d: evals = %d, want %d (one per candidate)", workers, evals, maxM)
		}
		if ref < 0 {
			ref = evals
		} else if evals != ref {
			t.Fatalf("evals depends on worker width: %d vs %d", evals, ref)
		}
	}
}

// A candidate error must abort with that error without losing the count
// of candidates that did evaluate.
func TestSearchMErrorKeepsCount(t *testing.T) {
	p, eng, specs := msearchProblem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p.Ctx = ctx
	bestM, _, cache, evals, err := searchM(p, eng, specs, 1, 5)
	if err == nil {
		t.Fatal("canceled search returned no error")
	}
	if bestM != 0 || cache != nil {
		t.Fatalf("canceled search still picked m=%d", bestM)
	}
	if evals != 0 {
		t.Fatalf("canceled search claims %d evaluations", evals)
	}
}

// The winning period cache is pooled by the engine: the plan built from
// searchM keeps referencing it, so the pool must keep returning the very
// same cache (never a rebuilt or invalidated one) for the winning period.
func TestSearchMBestCacheStaysPooled(t *testing.T) {
	p, eng, specs := msearchProblem(t)
	bestM, _, bestCache, _, err := searchM(p, eng, specs, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if bestCache == nil {
		t.Fatal("no winning cache")
	}
	tc := p.BasePeriod / float64(bestM)

	// Churn the pool with every other candidate period, then with a burst
	// of unrelated periods.
	for m := 1; m <= 6; m++ {
		if _, err := eng.PeriodCache(p.BasePeriod / float64(m)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 32; i++ {
		if _, err := eng.PeriodCache(p.BasePeriod / float64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	again, err := eng.PeriodCache(tc)
	if err != nil {
		t.Fatal(err)
	}
	if again != bestCache {
		t.Fatal("engine pool rebuilt the winning plan's period cache while the plan still references it")
	}

	// The retained cache must still evaluate the winning cycle.
	cyc, err := buildCycle(tc, specs, p.Overhead, cycleThermal)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.NewStableCached(eng.Model(), cyc, bestCache)
	if err != nil {
		t.Fatal(err)
	}
	if peak, _ := st.PeakEndOfPeriod(); !(peak > 0) {
		t.Fatalf("stale cache produced peak %v", peak)
	}
}
