package solver

import (
	"context"
	"errors"
	"math"
	"testing"

	"thermosc/internal/power"
	"thermosc/internal/sim"
	"thermosc/internal/thermal"
)

func msearchProblem(t *testing.T) (Problem, *sim.Engine, []coreSpec) {
	t.Helper()
	md, err := thermal.Default(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := power.PaperLevels(2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Problem{Model: md, Levels: ls, TmaxC: 60, Overhead: power.DefaultOverhead()}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	specs := []coreSpec{
		{Low: power.NewMode(0.8), High: power.NewMode(1.1), RH: 0.4},
		{Low: power.NewMode(0.8), High: power.NewMode(1.1), RH: 0.6},
	}
	return p, sim.NewEngine(md), specs
}

// Every candidate the pool evaluated must be counted, and the count must
// not depend on the worker width. The classic path counts exactly one
// evaluation per candidate; the incremental path counts every composed
// screening plus its deterministic classic confirmations.
func TestSearchMCountsEveryCandidate(t *testing.T) {
	p, eng, specs := msearchProblem(t)
	const maxM = 7
	for _, classic := range []bool{true, false} {
		p.ClassicEval = classic
		var ref int64 = -1
		var refM int
		for _, workers := range []int{1, 4} {
			p.Workers = workers
			ms, err := searchM(p, eng, specs, 1, maxM, nil)
			if err != nil {
				t.Fatal(err)
			}
			if ms.m < 1 || math.IsInf(ms.peak, 1) || ms.cache == nil {
				t.Fatalf("classic=%v workers=%d: degenerate result m=%d peak=%v", classic, workers, ms.m, ms.peak)
			}
			if classic && ms.evals != maxM {
				t.Fatalf("workers=%d: classic evals = %d, want %d (one per candidate)", workers, ms.evals, maxM)
			}
			if !classic && ms.evals <= maxM {
				t.Fatalf("workers=%d: incremental evals = %d, want > %d (screens + confirmations)", workers, ms.evals, maxM)
			}
			if ms.truncated || ms.evaluated != maxM {
				t.Fatalf("classic=%v workers=%d: complete scan reported truncated=%v evaluated=%d", classic, workers, ms.truncated, ms.evaluated)
			}
			if ref < 0 {
				ref, refM = ms.evals, ms.m
			} else if ms.evals != ref || ms.m != refM {
				t.Fatalf("classic=%v: result depends on worker width: evals %d vs %d, m %d vs %d",
					classic, ms.evals, ref, ms.m, refM)
			}
		}
	}
}

// A fully-canceled scan (the deadline beat every candidate) must refuse
// with a typed ErrDeadline without losing the count of candidates that
// did evaluate.
func TestSearchMErrorKeepsCount(t *testing.T) {
	p, eng, specs := msearchProblem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p.Ctx = ctx
	ms, err := searchM(p, eng, specs, 1, 5, nil)
	if err == nil {
		t.Fatal("canceled search returned no error")
	}
	if !errors.Is(err, ErrDeadline) || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled search error %v does not wrap ErrDeadline + context.Canceled", err)
	}
	if ms.m != 0 || ms.cache != nil {
		t.Fatalf("canceled search still picked m=%d", ms.m)
	}
	if ms.evals != 0 {
		t.Fatalf("canceled search claims %d evaluations", ms.evals)
	}
	if !ms.truncated {
		t.Fatal("canceled search not reported as truncated")
	}
}

// The winning period cache is pooled by the engine: the plan built from
// searchM keeps referencing it, so the pool must keep returning the very
// same cache (never a rebuilt or invalidated one) for the winning period.
func TestSearchMBestCacheStaysPooled(t *testing.T) {
	p, eng, specs := msearchProblem(t)
	ms, err := searchM(p, eng, specs, 1, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	bestCache := ms.cache
	if bestCache == nil {
		t.Fatal("no winning cache")
	}
	tc := p.BasePeriod / float64(ms.m)

	// Churn the pool with every other candidate period, then with a burst
	// of unrelated periods.
	for m := 1; m <= 6; m++ {
		if _, err := eng.PeriodCache(p.BasePeriod / float64(m)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 32; i++ {
		if _, err := eng.PeriodCache(p.BasePeriod / float64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	again, err := eng.PeriodCache(tc)
	if err != nil {
		t.Fatal(err)
	}
	if again != bestCache {
		t.Fatal("engine pool rebuilt the winning plan's period cache while the plan still references it")
	}

	// The retained cache must still evaluate the winning cycle.
	cyc, err := buildCycle(tc, specs, p.Overhead, cycleThermal)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.NewStableCached(eng.Model(), cyc, bestCache)
	if err != nil {
		t.Fatal(err)
	}
	if peak, _ := st.PeakEndOfPeriod(); !(peak > 0) {
		t.Fatalf("stale cache produced peak %v", peak)
	}
}
