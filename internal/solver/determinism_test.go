package solver

import (
	"math"
	"testing"
)

// The schedulers must be bit-for-bit deterministic: identical problems
// yield identical plans, including PCO's concurrently-evaluated phase
// search (ties broken by the smallest offset) and the goroutine-parallel
// EXS (shared-bound order must not change the optimum).
func TestSolverDeterminism(t *testing.T) {
	p := problem(t, 3, 2, 3, 58)
	type snap struct {
		thr, peak float64
		m         int
	}
	take := func(f func(Problem) (*Result, error)) snap {
		t.Helper()
		res, err := f(p)
		if err != nil {
			t.Fatal(err)
		}
		return snap{res.Throughput, res.PeakRise, res.M}
	}
	for name, f := range map[string]func(Problem) (*Result, error){
		"AO":  AO,
		"PCO": PCO,
		"EXS": EXS,
		"EXSParallel": func(pp Problem) (*Result, error) {
			return EXSParallel(pp, 4)
		},
	} {
		first := take(f)
		for k := 0; k < 3; k++ {
			again := take(f)
			if math.Abs(again.thr-first.thr) > 1e-15 ||
				math.Abs(again.peak-first.peak) > 1e-12 ||
				again.m != first.m {
				t.Fatalf("%s run %d diverged: %+v vs %+v", name, k, again, first)
			}
		}
	}
}

// The worker-pool width must be invisible in the output: AO and PCO with
// Workers=4 (or any width) must emit bit-identical plans to the
// sequential reference path (Workers=1) — same schedule segments,
// throughput, peak, and chosen m. Evals is deliberately NOT compared for
// EXSParallel-style solvers, but for AO/PCO even the evaluation counts
// match because every candidate is evaluated exactly once regardless of
// scheduling; we still only assert on the plan here to keep the contract
// minimal. Covers the seed platforms exercised elsewhere in the suite.
func TestAOPCOWorkersEquivalence(t *testing.T) {
	type plat struct {
		rows, cols, levels int
		tmaxC              float64
	}
	for _, pl := range []plat{
		{2, 1, 2, 65},
		{3, 1, 2, 65},
		{3, 1, 3, 55},
		{3, 2, 2, 55},
	} {
		p := problem(t, pl.rows, pl.cols, pl.levels, pl.tmaxC)
		for name, f := range map[string]func(Problem) (*Result, error){
			"AO":  AO,
			"PCO": PCO,
		} {
			pSeq := p
			pSeq.Workers = 1
			seq, err := f(pSeq)
			if err != nil {
				t.Fatalf("%s %+v sequential: %v", name, pl, err)
			}
			pPar := p
			pPar.Workers = 4
			par, err := f(pPar)
			if err != nil {
				t.Fatalf("%s %+v parallel: %v", name, pl, err)
			}
			if par.Throughput != seq.Throughput || par.PeakRise != seq.PeakRise || par.M != seq.M {
				t.Fatalf("%s %+v: parallel plan diverged: thr %v vs %v, peak %v vs %v, m %d vs %d",
					name, pl, par.Throughput, seq.Throughput, par.PeakRise, seq.PeakRise, par.M, seq.M)
			}
			for i := 0; i < par.Schedule.NumCores(); i++ {
				sa, sb := seq.Schedule.CoreSegments(i), par.Schedule.CoreSegments(i)
				if len(sa) != len(sb) {
					t.Fatalf("%s %+v core %d: segment counts differ (%d vs %d)",
						name, pl, i, len(sa), len(sb))
				}
				for q := range sa {
					if sa[q] != sb[q] {
						t.Fatalf("%s %+v core %d segment %d differs: %v vs %v",
							name, pl, i, q, sa[q], sb[q])
					}
				}
			}
		}
	}
}

// Schedules, not just summary numbers, must repeat exactly.
func TestAOScheduleDeterminism(t *testing.T) {
	p := problem(t, 3, 1, 2, 62)
	a, err := AO(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AO(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		sa, sb := a.Schedule.CoreSegments(i), b.Schedule.CoreSegments(i)
		if len(sa) != len(sb) {
			t.Fatalf("core %d segment counts differ", i)
		}
		for q := range sa {
			if sa[q] != sb[q] {
				t.Fatalf("core %d segment %d differs: %v vs %v", i, q, sa[q], sb[q])
			}
		}
	}
}
