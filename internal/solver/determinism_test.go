package solver

import (
	"math"
	"testing"
)

// The schedulers must be bit-for-bit deterministic: identical problems
// yield identical plans, including PCO's concurrently-evaluated phase
// search (ties broken by the smallest offset) and the goroutine-parallel
// EXS (shared-bound order must not change the optimum).
func TestSolverDeterminism(t *testing.T) {
	p := problem(t, 3, 2, 3, 58)
	type snap struct {
		thr, peak float64
		m         int
	}
	take := func(f func(Problem) (*Result, error)) snap {
		t.Helper()
		res, err := f(p)
		if err != nil {
			t.Fatal(err)
		}
		return snap{res.Throughput, res.PeakRise, res.M}
	}
	for name, f := range map[string]func(Problem) (*Result, error){
		"AO":  AO,
		"PCO": PCO,
		"EXS": EXS,
		"EXSParallel": func(pp Problem) (*Result, error) {
			return EXSParallel(pp, 4)
		},
	} {
		first := take(f)
		for k := 0; k < 3; k++ {
			again := take(f)
			if math.Abs(again.thr-first.thr) > 1e-15 ||
				math.Abs(again.peak-first.peak) > 1e-12 ||
				again.m != first.m {
				t.Fatalf("%s run %d diverged: %+v vs %+v", name, k, again, first)
			}
		}
	}
}

// Schedules, not just summary numbers, must repeat exactly.
func TestAOScheduleDeterminism(t *testing.T) {
	p := problem(t, 3, 1, 2, 62)
	a, err := AO(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AO(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		sa, sb := a.Schedule.CoreSegments(i), b.Schedule.CoreSegments(i)
		if len(sa) != len(sb) {
			t.Fatalf("core %d segment counts differ", i)
		}
		for q := range sa {
			if sa[q] != sb[q] {
				t.Fatalf("core %d segment %d differs: %v vs %v", i, q, sa[q], sb[q])
			}
		}
	}
}
