package solver

import (
	"fmt"

	"thermosc/internal/mat"
	"thermosc/internal/power"
	"thermosc/internal/schedule"
	"thermosc/internal/thermal"
)

// IdealVoltages computes the continuous per-core supply voltages that pin
// every core's steady-state temperature exactly at tmaxRise (Kelvin above
// ambient) — the paper's §V starting point, T∞(v_const) = Tmax·1.
//
// For the layered model the non-core node temperatures are first resolved
// from the core temperatures (they carry no power injection), then the
// required static power per core follows from the core rows of (G−βE)·T =
// Ψ, and the voltage from inverting ψ(v). Cores whose required power falls
// below the leakage floor are switched off; voltages are capped at vcap
// (pass the platform's maximum DVFS voltage).
func IdealVoltages(md *thermal.Model, tmaxRise, vcap float64) ([]float64, error) {
	if tmaxRise <= 0 {
		return nil, fmt.Errorf("solver: non-positive temperature budget %v K", tmaxRise)
	}
	n := md.NumCores()
	dim := md.NumNodes()
	g := md.Conductance()
	beta := md.Power().Beta

	// Full temperature vector with core temps pinned at tmaxRise.
	temps := make([]float64, dim)
	for i := 0; i < n; i++ {
		temps[i] = tmaxRise
	}
	if rest := dim - n; rest > 0 {
		// Solve G_rr·T_rest = −G_rc·T_core for the unpowered nodes.
		grr := mat.NewDense(rest, rest)
		rhs := make([]float64, rest)
		for i := 0; i < rest; i++ {
			for j := 0; j < rest; j++ {
				grr.Set(i, j, g.At(n+i, n+j))
			}
			var s float64
			for j := 0; j < n; j++ {
				s += g.At(n+i, j) * tmaxRise
			}
			rhs[i] = -s
		}
		trest, err := mat.Solve(grr, rhs)
		if err != nil {
			return nil, fmt.Errorf("solver: resolving package node temperatures: %w", err)
		}
		copy(temps[n:], trest)
	}

	// Required static power at each core: ψ_i = (G·T)_i − β_i·T_i, with
	// the leakage slope and the ψ(v) inversion scaled per core on
	// heterogeneous platforms.
	gt := g.MulVec(temps)
	volts := make([]float64, n)
	pm := md.Power()
	for i := 0; i < n; i++ {
		scale := md.CoreScale(i)
		psi := gt[i] - beta*scale*temps[i]
		v, err := pm.VoltageForStatic(psi / scale)
		if err != nil {
			// Even an idle core would overheat its budget share: turn it
			// off (v = 0). With sane calibrations this does not happen at
			// the paper's thresholds.
			v = 0
		}
		if v > vcap {
			v = vcap
		}
		volts[i] = v
	}
	return volts, nil
}

// Ideal solves the continuous relaxation and returns it as a constant
// schedule result (the unachievable upper bound the paper's motivation
// example quotes, e.g. 1.1972 for the 3×1 platform at 65 °C).
func Ideal(p Problem) (*Result, error) {
	p, err := p.withDefaults()
	if err != nil {
		return nil, err
	}
	start := now()
	volts, err := IdealVoltages(p.Model, p.tmaxRise(), p.Levels.Max())
	if err != nil {
		return nil, err
	}
	modes := make([]power.Mode, len(volts))
	for i, v := range volts {
		modes[i] = power.NewMode(v)
	}
	sched := schedule.Constant(p.BasePeriod, modes)
	peak, _ := mat.VecMax(p.Model.SteadyStateCores(modes))
	return &Result{
		Name:       "Ideal",
		Schedule:   sched,
		Throughput: sched.Throughput(),
		PeakRise:   peak,
		M:          1,
		Feasible:   peak <= p.tmaxRise()+feasTol,
		Elapsed:    since(start),
		Evals:      1,
	}, nil
}
