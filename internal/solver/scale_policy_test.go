package solver

import (
	"math"
	"reflect"
	"testing"

	"thermosc/internal/floorplan"
	"thermosc/internal/power"
	"thermosc/internal/thermal"
)

// sparseProblem builds a generated platform forced onto the sparse
// backend — small enough to solve in milliseconds, large enough
// (> sparseTrialCap cores) to activate the scale policy.
func sparseProblem(t testing.TB, g floorplan.GenSpec, levels int, tmaxC float64) Problem {
	t.Helper()
	md, err := thermal.BuildGen(g, power.DefaultModel(), thermal.WithAlgebra(thermal.AlgebraSparse))
	if err != nil {
		t.Fatal(err)
	}
	if !md.SparsePath() {
		t.Fatalf("%s: model not on the sparse backend", g.Name)
	}
	ls, err := power.PaperLevels(levels)
	if err != nil {
		t.Fatal(err)
	}
	return Problem{
		Model:    md,
		Levels:   ls,
		TmaxC:    tmaxC,
		Overhead: power.DefaultOverhead(),
	}
}

func TestScalePolicyActivation(t *testing.T) {
	dense, err := thermal.Default(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if pol := newScalePolicy(dense); pol != nil {
		t.Fatal("dense backend must not get a scale policy")
	}
	small, err := thermal.BuildGen(floorplan.Mesh(2, 2), power.DefaultModel(),
		thermal.WithAlgebra(thermal.AlgebraSparse))
	if err != nil {
		t.Fatal(err)
	}
	if pol := newScalePolicy(small); pol != nil {
		t.Fatalf("%d cores <= sparseTrialCap must scan exhaustively", small.NumCores())
	}
	big := sparseProblem(t, floorplan.Mesh(4, 4), 3, 70).Model
	pol := newScalePolicy(big)
	if pol == nil {
		t.Fatal("16-core sparse model must get a scale policy")
	}
	if r, c := pol.ur.Dims(); r != big.NumNodes() || c != big.NumCores() {
		t.Fatalf("unit responses %dx%d, want %dx%d", r, c, big.NumNodes(), big.NumCores())
	}
}

func TestTopByRankingAndCap(t *testing.T) {
	p := sparseProblem(t, floorplan.Mesh(4, 4), 3, 70)
	pol := newScalePolicy(p.Model)
	specs := make([]coreSpec, p.Model.NumCores())
	all := func(int) bool { return true }

	// A synthetic score with a tie between indices 3 and 5: the stable
	// sort must keep the smaller index first.
	score := func(j int) float64 {
		if j == 3 || j == 5 {
			return 100
		}
		return float64(j)
	}
	top := pol.topBy(specs, 4, all, score)
	if len(top) != 4 {
		t.Fatalf("cap 4 returned %d cores", len(top))
	}
	if top[0] != 3 || top[1] != 5 {
		t.Fatalf("tie must break to the smaller index: %v", top)
	}
	for i := 1; i < len(top); i++ {
		if score(top[i]) > score(top[i-1]) {
			t.Fatalf("not descending by score: %v", top)
		}
	}

	// The eligibility filter must exclude cores before ranking.
	odd := func(j int) bool { return j%2 == 1 }
	for _, j := range pol.topBy(specs, 100, odd, score) {
		if j%2 == 0 {
			t.Fatalf("ineligible core %d ranked", j)
		}
	}
}

func TestSparseMGrid(t *testing.T) {
	if g := sparseMGrid(2, 1); g != nil {
		t.Fatalf("empty range produced %v", g)
	}
	if g := sparseMGrid(5, 5); len(g) != 1 || g[0] != 5 {
		t.Fatalf("degenerate range: %v", g)
	}
	g := sparseMGrid(1, 40)
	if g[0] != 1 || g[len(g)-1] != 40 {
		t.Fatalf("grid must span [startM, maxM]: %v", g)
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Fatalf("grid not strictly increasing: %v", g)
		}
		if i < len(g)-1 {
			step := float64(g[i]) / float64(g[i-1])
			if step > sparseMGridRatio+1e-9 && g[i] != g[i-1]+1 {
				t.Fatalf("grid step %v exceeds ratio at %v", step, g)
			}
		}
	}
	// The grid must be a strict subset of the exhaustive scan, or there
	// is no point: fewer candidates than integers in the range.
	if len(g) >= 40 {
		t.Fatalf("grid as large as the exhaustive scan: %d", len(g))
	}
}

func TestSparseSeedSpecs(t *testing.T) {
	ls, err := power.PaperLevels(3)
	if err != nil {
		t.Fatal(err)
	}
	vmin := ls.Min()
	volts := []float64{0.3, 0.9, -0.1, 1.3}
	specs := neighborSpecs(ls, volts, true)
	before := append([]coreSpec(nil), specs...)
	sparseSeedSpecs(specs, volts, ls)

	// Core 0 (ideal 0.3 V, below vmin): the constant-min clamp must be
	// rewritten to the eq. (11) duty cycle shrunk by the safety factor.
	want := sparseSeedSafety * volts[0] / vmin
	if !specs[0].Low.IsOff() || specs[0].High.Voltage != vmin {
		t.Fatalf("core 0 is not the off/min oscillation: %+v", specs[0])
	}
	if math.Abs(specs[0].RH-want) > 1e-12 {
		t.Fatalf("core 0 RH = %v, want %v", specs[0].RH, want)
	}
	// The others (in-band, non-positive, at-max ideals) must be untouched.
	for i := 1; i < len(specs); i++ {
		if specs[i] != before[i] {
			t.Fatalf("core %d rewritten: %+v -> %+v", i, before[i], specs[i])
		}
	}
}

func TestSparseFeasibleSeed(t *testing.T) {
	base := sparseProblem(t, floorplan.Mesh(4, 4), 3, 70)

	probePeak := func(p Problem, specs []coreSpec) float64 {
		t.Helper()
		cyc, err := buildCycle(p.BasePeriod, specs, p.Overhead, cycleThermal)
		if err != nil {
			t.Fatal(err)
		}
		pk, _, err := p.engine().StepUpPeak(cyc)
		if err != nil {
			t.Fatal(err)
		}
		return pk
	}

	// The ideal-pinned seed sits essentially AT Tmax, above the
	// margin-shrunk target, so the normal path is the bisection backoff;
	// the returned specs must probe feasible within the margin.
	p, err := base.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	volts, err := IdealVoltages(p.Model, p.tmaxRise(), p.Levels.Max())
	if err != nil {
		t.Fatal(err)
	}
	specs, err := sparseFeasibleSeed(p, p.engine(), volts)
	if err != nil {
		t.Fatal(err)
	}
	if pk := probePeak(p, specs); pk > p.tmaxRise()-sparseSeedMargin+1e-9 {
		t.Fatalf("seed probes at %v K, target %v K", pk, p.tmaxRise()-sparseSeedMargin)
	}

	// With a threshold far above what the capped voltages can reach, the
	// ideal vector is vcap-clamped, already feasible, and returned as-is
	// (the early path — no bisection).
	loose := base
	loose.TmaxC = 150
	pl, err := loose.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	lvolts, err := IdealVoltages(pl.Model, pl.tmaxRise(), pl.Levels.Max())
	if err != nil {
		t.Fatal(err)
	}
	lspecs, err := sparseFeasibleSeed(pl, pl.engine(), lvolts)
	if err != nil {
		t.Fatal(err)
	}
	if pk := probePeak(pl, lspecs); pk > pl.tmaxRise()-sparseSeedMargin {
		t.Fatalf("loose seed infeasible: %v K", pk)
	}
}

// AO on a policy-active sparse platform must produce a feasible plan and
// remain bit-identical across worker widths — the policy is a pure
// function of model and specs, never of scheduling.
func TestSparseAOFeasibleAndWorkerInvariant(t *testing.T) {
	p := sparseProblem(t, floorplan.Mesh(4, 4), 3, 70)
	p.Workers = 1
	seq, err := AO(p)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Feasible {
		t.Fatalf("sparse AO infeasible: peak rise %v", seq.PeakRise)
	}
	if seq.PeakRise > p.Model.Rise(p.TmaxC)+1e-6 {
		t.Fatalf("peak rise %v exceeds budget %v", seq.PeakRise, p.Model.Rise(p.TmaxC))
	}
	if seq.Throughput <= 0 {
		t.Fatalf("throughput %v", seq.Throughput)
	}
	p.Workers = 4
	par, err := AO(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Schedule, par.Schedule) || seq.M != par.M ||
		seq.PeakRise != par.PeakRise || seq.Throughput != par.Throughput {
		t.Fatalf("plans differ across worker widths: m=%d/%d peak=%v/%v",
			seq.M, par.M, seq.PeakRise, par.PeakRise)
	}
}

// PCO exercises the phase-core mask and the bounded refill on the same
// policy-active platform.
func TestSparsePCOFeasible(t *testing.T) {
	p := sparseProblem(t, floorplan.Mesh(4, 4), 3, 70)
	res, err := PCO(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("sparse PCO infeasible: peak rise %v", res.PeakRise)
	}
	if res.PeakRise > p.Model.Rise(p.TmaxC)+1e-6 {
		t.Fatalf("peak rise %v exceeds budget", res.PeakRise)
	}
}

// A heterogeneous stacked platform routes through the same policy — the
// CoreScale factor must reach the sensitivity scores without panicking or
// degrading feasibility.
func TestSparseAOStackedHetero(t *testing.T) {
	g := floorplan.BigLittleStacked(2, 2, 3, 0.5, 7) // 12 cores > sparseTrialCap
	p := sparseProblem(t, g, 3, 70)
	res, err := AO(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("stacked hetero AO infeasible: peak rise %v", res.PeakRise)
	}
}
