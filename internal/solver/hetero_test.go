package solver

import (
	"math"
	"testing"

	"thermosc/internal/floorplan"
	"thermosc/internal/power"
	"thermosc/internal/thermal"
)

func heteroProblem(t testing.TB, scales []float64, levels int, tmaxC float64) Problem {
	t.Helper()
	fp := floorplan.MustGrid(len(scales), 1, 4e-3)
	md, err := thermal.NewHeteroModel(fp, thermal.HotSpot65nm(), power.DefaultModel(), scales)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := power.PaperLevels(levels)
	if err != nil {
		t.Fatal(err)
	}
	return Problem{Model: md, Levels: ls, TmaxC: tmaxC, Overhead: power.DefaultOverhead()}
}

func TestHeteroIdealVoltagesFavorLittleCores(t *testing.T) {
	p := heteroProblem(t, []float64{1.8, 1, 1}, 2, 65)
	volts, err := IdealVoltages(p.Model, p.Model.Rise(65), 1.3)
	if err != nil {
		t.Fatal(err)
	}
	// The power-hungry core must be assigned a lower ideal voltage than
	// its mirror-position efficient sibling.
	if volts[0] >= volts[2] {
		t.Fatalf("big core should get a lower voltage: %v", volts)
	}
	// And the ideal assignment still pins every core at the budget.
	modes := make([]power.Mode, 3)
	for i, v := range volts {
		modes[i] = power.NewMode(v)
	}
	for i, rise := range p.Model.SteadyStateCores(modes) {
		if math.Abs(rise-30) > 1e-6 {
			t.Fatalf("core %d rise %v, want 30", i, rise)
		}
	}
}

func TestHeteroEXSMatchesNaive(t *testing.T) {
	p := heteroProblem(t, []float64{1.5, 1, 0.8}, 3, 60)
	fast, err := EXS(p)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := EXSNaive(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fast.Throughput-naive.Throughput) > 1e-9 {
		t.Fatalf("hetero EXS %v != naive %v", fast.Throughput, naive.Throughput)
	}
	par, err := EXSParallel(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(par.Throughput-fast.Throughput) > 1e-9 {
		t.Fatalf("hetero parallel EXS %v != sequential %v", par.Throughput, fast.Throughput)
	}
}

func TestHeteroAOFeasibleAndDominant(t *testing.T) {
	p := heteroProblem(t, []float64{1.5, 1, 0.8}, 2, 65)
	ao, err := AO(p)
	if err != nil {
		t.Fatal(err)
	}
	if !ao.Feasible {
		t.Fatalf("hetero AO infeasible (peak rise %.3f)", ao.PeakRise)
	}
	exs, err := EXS(p)
	if err != nil {
		t.Fatal(err)
	}
	if ao.Throughput < exs.Throughput-1e-6 {
		t.Fatalf("hetero AO %v below EXS %v", ao.Throughput, exs.Throughput)
	}
	// The efficient core should sustain at least the speed of the hungry
	// one in the final schedule.
	sBig := ao.Schedule.CoreWork(0) / ao.Schedule.Period()
	sLittle := ao.Schedule.CoreWork(2) / ao.Schedule.Period()
	if sLittle < sBig-1e-9 {
		t.Fatalf("efficient core slower than hungry core: %v vs %v", sLittle, sBig)
	}
}

func TestHeteroEfficiencySkewShiftsWork(t *testing.T) {
	// Make core 0 drastically cheaper than core 1: EXS should exploit it.
	p := heteroProblem(t, []float64{0.5, 2.0}, 5, 55)
	exs, err := EXS(p)
	if err != nil {
		t.Fatal(err)
	}
	if !exs.Feasible {
		t.Fatal("expected feasible")
	}
	v0 := exs.Schedule.ModeAt(0, 0).Voltage
	v1 := exs.Schedule.ModeAt(1, 0).Voltage
	if v0 <= v1 {
		t.Fatalf("cheap core should run faster: %v vs %v", v0, v1)
	}
}
