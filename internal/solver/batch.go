package solver

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the request-coalescing batch scheduler: a bounded-window
// grouper for concurrent solve requests against the same platform. The
// serving layer keys groups by the canonical PLATFORM key (same RC
// model — shared Propagator eigenbasis and period-operator caches) and
// members by the canonical PLAN key (platform + tmax + method), so a
// burst of related requests is collapsed two ways:
//
//  1. duplicate members (same plan key) run ONE solve and share its
//     result — the dominant win, since real bursts are zipf-skewed over
//     a handful of thresholds;
//  2. distinct members lease one shared sim.Engine per group: the group
//     leader runs first and warms the steady-state / eigen-exponential
//     caches every follower then hits.
//
// The batcher never changes what a solve computes — members run the
// exact work closure the caller would have run unbatched, on the
// caller's own goroutine, under the caller's own context — so batched
// plans stay byte-identical to the unbatched path (the solvers are
// bit-reproducible at any engine cache state).

// BatchConfig tunes a Batcher; zero values select the defaults.
type BatchConfig struct {
	// Window is how long the first member of a group waits for company
	// before the group seals and dispatches (default 2ms — small against
	// a cold solve, large against request interarrival in a burst).
	Window time.Duration
	// MaxBatch seals a group early once it holds this many members
	// (default 16), bounding the window latency a hot group adds.
	MaxBatch int
}

func (c BatchConfig) withDefaults() BatchConfig {
	if c.Window <= 0 {
		c.Window = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	return c
}

// batchExec is one distinct member key's execution slot: the first
// member to claim a key runs the work; later members with the same key
// wait on done and share the outcome.
type batchExec struct {
	done     chan struct{}
	val      any
	err      error
	panicked bool
}

// batchGroup is one open or sealed batch: the members that joined one
// window on one group key.
type batchGroup struct {
	sealed     chan struct{} // closed when the group stops accepting members
	leaderDone chan struct{} // closed when the leader's work has finished (or panicked)
	size       atomic.Int32
	execs      map[string]*batchExec // member key → execution slot (written only pre-seal, under Batcher.mu)
	timer      *time.Timer
}

// Batcher groups concurrent Do calls by group key inside a bounded
// window and dispatches them leader-first: the first member runs alone
// (warming whatever shared state the work touches), then the rest run
// concurrently, with duplicate member keys collapsed onto one
// execution. Safe for concurrent use.
type Batcher struct {
	cfg BatchConfig

	mu     sync.Mutex
	groups map[string]*batchGroup

	groupsFormed atomic.Int64
	members      atomic.Int64
	coalesced    atomic.Int64
	deduped      atomic.Int64
	windowWaitNs atomic.Int64
	windowMaxNs  atomic.Int64
}

// BatchCounters is a snapshot of a Batcher's lifetime accounting.
type BatchCounters struct {
	GroupsFormed int64 // groups opened (one per window per group key)
	Members      int64 // Do calls that entered a group
	Coalesced    int64 // members that joined an already-open group
	Deduped      int64 // members served from another member's execution
	// WindowWaitNs is the summed seal-wait latency members paid;
	// WindowWaitMaxNs the worst single member's.
	WindowWaitNs    int64
	WindowWaitMaxNs int64
}

// BatchInfo describes how one Do call was dispatched.
type BatchInfo struct {
	// Leader marks the group's first member (it ran before the rest).
	Leader bool
	// Coalesced marks a member that joined an already-open group.
	Coalesced bool
	// Deduped marks a member whose result came from another member's
	// execution of the same key.
	Deduped bool
	// GroupSize is the group's member count at dispatch time.
	GroupSize int
	// WindowWait is how long this member waited for the group to seal.
	WindowWait time.Duration
}

// NewBatcher builds a batch scheduler with the given configuration.
func NewBatcher(cfg BatchConfig) *Batcher {
	return &Batcher{cfg: cfg.withDefaults(), groups: make(map[string]*batchGroup)}
}

// Stats returns a snapshot of the lifetime counters.
func (b *Batcher) Stats() BatchCounters {
	return BatchCounters{
		GroupsFormed:    b.groupsFormed.Load(),
		Members:         b.members.Load(),
		Coalesced:       b.coalesced.Load(),
		Deduped:         b.deduped.Load(),
		WindowWaitNs:    b.windowWaitNs.Load(),
		WindowWaitMaxNs: b.windowMaxNs.Load(),
	}
}

// Do runs work as a member of the group named by groupKey, collapsing
// concurrent members with equal memberKey onto one execution. The work
// closure runs on the CALLING goroutine (panics propagate to the
// caller, as unbatched), after the group seals — except that a member
// whose ctx dies while waiting skips the remaining waits and runs (or
// falls back to running) its own work immediately, so per-request
// deadlines cancel individually and batching can only add at most one
// Window of latency to a live request.
//
// Duplicate members share the executing member's result VALUE — callers
// must treat it as immutable. A duplicate whose shared execution
// panicked, or finished with a context error (the executor's deadline,
// not the duplicate's), falls back to running its own work.
func (b *Batcher) Do(ctx context.Context, groupKey, memberKey string, work func() (any, error)) (any, BatchInfo, error) {
	g, exec, dup, info := b.join(groupKey, memberKey)
	b.members.Add(1)
	if info.Coalesced {
		b.coalesced.Add(1)
	}
	joined := time.Now()
	ctxDead := !b.await(ctx, g.sealed)
	b.observeWait(time.Since(joined), &info)
	info.GroupSize = int(g.size.Load())

	if dup { // duplicate member key: wait for the executing member
		select {
		case <-exec.done:
			if !exec.panicked && !isCtxErr(exec.err) {
				b.deduped.Add(1)
				info.Deduped = true
				return exec.val, info, exec.err
			}
			// Poisoned execution (panic, or the executor's own deadline):
			// compute independently — this member may still have budget.
		case <-ctx.Done():
			// This member's deadline died first; run the work itself so the
			// anytime chain answers under ITS context, not someone else's.
		}
		val, err := work()
		return val, info, err
	}

	if info.Leader {
		// The leader runs first and alone: its solve warms the shared
		// engine caches the followers then hit. leaderDone closes even if
		// the work panics — followers must never hang on a dead leader.
		defer close(g.leaderDone)
	} else if !ctxDead {
		b.await(ctx, g.leaderDone)
	}
	val, err := runExec(exec, work)
	return val, info, err
}

// join places one member into an open group for groupKey, opening a new
// group when none is accepting. It returns the member's execution slot,
// whether the member duplicates an earlier key, and the dispatch info
// so far.
func (b *Batcher) join(groupKey, memberKey string) (*batchGroup, *batchExec, bool, BatchInfo) {
	b.mu.Lock()
	defer b.mu.Unlock()
	g, ok := b.groups[groupKey]
	var info BatchInfo
	if !ok {
		g = &batchGroup{
			sealed:     make(chan struct{}),
			leaderDone: make(chan struct{}),
			execs:      make(map[string]*batchExec, b.cfg.MaxBatch),
		}
		b.groups[groupKey] = g
		b.groupsFormed.Add(1)
		g.timer = time.AfterFunc(b.cfg.Window, func() { b.seal(groupKey, g) })
		info.Leader = true
	} else {
		info.Coalesced = true
	}
	g.size.Add(1)
	exec, dup := g.execs[memberKey]
	if !dup {
		exec = &batchExec{done: make(chan struct{})}
		g.execs[memberKey] = exec
	}
	if int(g.size.Load()) >= b.cfg.MaxBatch {
		b.sealLocked(groupKey, g)
	}
	return g, exec, dup, info
}

// seal closes a group to new members and removes it from the open set.
func (b *Batcher) seal(groupKey string, g *batchGroup) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sealLocked(groupKey, g)
}

func (b *Batcher) sealLocked(groupKey string, g *batchGroup) {
	select {
	case <-g.sealed:
		return // already sealed (timer vs. size race)
	default:
	}
	if b.groups[groupKey] == g {
		delete(b.groups, groupKey)
	}
	g.timer.Stop()
	close(g.sealed)
}

// await waits for ch or the context, reporting false when the context
// died first. A member with a dead context stops waiting — its work
// runs immediately and answers under its own (expired) deadline.
func (b *Batcher) await(ctx context.Context, ch <-chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
	}
	select {
	case <-ch:
		return true
	case <-ctx.Done():
		return false
	}
}

func (b *Batcher) observeWait(d time.Duration, info *BatchInfo) {
	info.WindowWait = d
	ns := d.Nanoseconds()
	b.windowWaitNs.Add(ns)
	for {
		cur := b.windowMaxNs.Load()
		if ns <= cur || b.windowMaxNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// runExec runs work and publishes its outcome on the member key's
// execution slot. Panic-safe: the slot closes (flagged) before the
// panic propagates to the calling goroutine, so duplicate waiters fall
// back to their own work instead of hanging.
func runExec(e *batchExec, work func() (any, error)) (any, error) {
	finished := false
	defer func() {
		if !finished {
			e.panicked = true
		}
		close(e.done)
	}()
	e.val, e.err = work()
	finished = true
	return e.val, e.err
}
