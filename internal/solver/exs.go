package solver

import (
	"math"
	"time"

	"thermosc/internal/mat"
	"thermosc/internal/power"
	"thermosc/internal/schedule"
)

// EXSNaive is a faithful transcription of the paper's Algorithm 1: it
// enumerates every constant per-core mode assignment (levels^N of them),
// computes the steady-state temperature T∞ = −A⁻¹B for each, and keeps the
// feasible assignment with the largest speed sum. Exponential in the core
// count — this is the baseline whose running time Table V reports.
func EXSNaive(p Problem) (*Result, error) {
	p, err := p.withDefaults()
	if err != nil {
		return nil, err
	}
	start := now()
	n := p.Model.NumCores()
	tmax := p.tmaxRise()
	volts := candidateVoltages(p)
	hcc := coreResponseMatrix(p)
	pm := p.Model.Power()
	psi := make([]float64, len(volts))
	for k, v := range volts {
		psi[k] = pm.Static(power.NewMode(v))
	}

	idx := make([]int, n)
	bestSum := math.Inf(-1)
	var best []int
	var evals int64
	tempBuf := make([]float64, n)
	for {
		evals++
		if evals&1023 == 0 {
			if err := p.ctxErr(); err != nil {
				// Anytime: the incumbent (if any) is a fully-evaluated
				// feasible assignment — return it tagged Degraded rather
				// than discarding the work done so far.
				if best != nil {
					res, rerr := exsResult(p, "EXS-naive", best, bestSum, evals, start)
					if rerr == nil {
						res.Degraded = DegradedEXS
						return res, nil
					}
				}
				return nil, deadlineErr(err)
			}
		}
		// T∞ at the cores for this assignment.
		for i := range tempBuf {
			tempBuf[i] = 0
		}
		var speedSum float64
		for j, k := range idx {
			w := psi[k]
			col := hcc[j]
			for i := range tempBuf {
				tempBuf[i] += w * col[i]
			}
			speedSum += volts[k]
		}
		maxT, _ := mat.VecMax(tempBuf)
		if maxT <= tmax && speedSum > bestSum {
			bestSum = speedSum
			best = append(best[:0], idx...)
		}
		// Odometer increment.
		d := n - 1
		for d >= 0 {
			idx[d]++
			if idx[d] < len(volts) {
				break
			}
			idx[d] = 0
			d--
		}
		if d < 0 {
			break
		}
	}
	return exsResult(p, "EXS-naive", best, bestSum, evals, start)
}

// EXS is the branch-and-bound variant: identical optimum to Algorithm 1,
// but prunes subtrees whose best-case completion is already infeasible or
// cannot beat the incumbent. It is the default EXS used by the comparison
// experiments; EXPERIMENTS.md reports both running times.
func EXS(p Problem) (*Result, error) {
	p, err := p.withDefaults()
	if err != nil {
		return nil, err
	}
	start := now()
	n := p.Model.NumCores()
	tmax := p.tmaxRise()
	volts := candidateVoltages(p) // ascending
	hcc := coreResponseMatrix(p)
	pm := p.Model.Power()
	psi := make([]float64, len(volts))
	for k, v := range volts {
		psi[k] = pm.Static(power.NewMode(v))
	}
	psiMin := psi[0]

	// minSuffix[j][i]: temperature contribution at core i if cores j..n−1
	// all run at the minimum level — the least any completion can add.
	minSuffix := make([][]float64, n+1)
	minSuffix[n] = make([]float64, n)
	for j := n - 1; j >= 0; j-- {
		row := mat.VecClone(minSuffix[j+1])
		mat.VecAXPY(row, psiMin, hcc[j])
		minSuffix[j] = row
	}
	// maxSpeedSuffix[j]: speed sum if cores j..n−1 all run at max level.
	maxSpeedSuffix := make([]float64, n+1)
	for j := n - 1; j >= 0; j-- {
		maxSpeedSuffix[j] = maxSpeedSuffix[j+1] + volts[len(volts)-1]
	}

	bestSum := math.Inf(-1)
	best := make([]int, n)
	found := false
	idx := make([]int, n)
	var evals int64
	var aborted error

	// Depth-indexed scratch: the dfs visits one node at a time, so the
	// child state of depth j can live in row j+1 — one allocation for the
	// whole search instead of one per interior node.
	scratchBuf := make([]float64, (n+2)*n)
	scratch := make([][]float64, n+2)
	for d := range scratch {
		scratch[d] = scratchBuf[d*n : (d+1)*n : (d+1)*n]
	}

	var dfs func(j int, temps []float64, speedSum float64)
	dfs = func(j int, temps []float64, speedSum float64) {
		if aborted != nil {
			return
		}
		evals++
		if evals&1023 == 0 {
			if err := p.ctxErr(); err != nil {
				aborted = err
				return
			}
		}
		if speedSum+maxSpeedSuffix[j] <= bestSum {
			return // cannot beat the incumbent
		}
		// Feasibility bound: even the coldest completion overheats.
		for i := 0; i < n; i++ {
			if temps[i]+minSuffix[j][i] > tmax+feasTol {
				return
			}
		}
		if j == n {
			if speedSum > bestSum {
				bestSum = speedSum
				copy(best, idx)
				found = true
			}
			return
		}
		// Try levels from highest to lowest so good incumbents appear
		// early and tighten the throughput bound.
		child := scratch[j+1]
		for k := len(volts) - 1; k >= 0; k-- {
			idx[j] = k
			copy(child, temps)
			mat.VecAXPY(child, psi[k], hcc[j])
			dfs(j+1, child, speedSum+volts[k])
		}
	}
	dfs(0, scratch[0], 0)
	if aborted != nil {
		// Anytime: the incumbent is a fully-evaluated feasible assignment
		// (pruning never admits an infeasible leaf), just not the proven
		// optimum — return it tagged Degraded. With no incumbent the
		// deadline beat every leaf: a typed deadline refusal.
		if !found {
			return nil, deadlineErr(aborted)
		}
		res, err := exsResult(p, "EXS", best, bestSum, evals, start)
		if err != nil {
			return nil, err
		}
		res.Degraded = DegradedEXS
		return res, nil
	}

	if !found {
		return exsResult(p, "EXS", nil, bestSum, evals, start)
	}
	return exsResult(p, "EXS", best, bestSum, evals, start)
}

// candidateVoltages returns the constant-mode search space: the discrete
// levels, preceded by the inactive mode (0 V) unless shutdown is
// disallowed.
func candidateVoltages(p Problem) []float64 {
	vs := p.Levels.Voltages()
	if p.DisallowOff {
		return vs
	}
	return append([]float64{0}, vs...)
}

// coreResponseMatrix returns per-core columns of the steady-state map:
// hcc[j][i] is the temperature rise at core i per unit of REFERENCE
// static power commanded at core j — i.e. the unit response scaled by
// core j's heterogeneity factor, so enumeration code can keep a single
// shared ψ(v) table.
func coreResponseMatrix(p Problem) [][]float64 {
	n := p.Model.NumCores()
	ur := p.Model.UnitResponses()
	cols := make([][]float64, n)
	for j := 0; j < n; j++ {
		col := make([]float64, n)
		s := p.Model.CoreScale(j)
		for i := 0; i < n; i++ {
			col[i] = s * ur.At(i, j)
		}
		cols[j] = col
	}
	return cols
}

func exsResult(p Problem, name string, best []int, bestSum float64, evals int64, start time.Time) (*Result, error) {
	if best == nil {
		return &Result{
			Name:     name,
			Feasible: false,
			Elapsed:  since(start),
			Evals:    evals,
		}, nil
	}
	volts := candidateVoltages(p)
	modes := make([]power.Mode, len(best))
	for i, k := range best {
		modes[i] = power.NewMode(volts[k])
	}
	sched := schedule.Constant(p.BasePeriod, modes)
	peak, _ := mat.VecMax(p.Model.SteadyStateCores(modes))
	return &Result{
		Name:       name,
		Schedule:   sched,
		Throughput: bestSum / float64(len(best)),
		PeakRise:   peak,
		M:          1,
		Feasible:   peak <= p.tmaxRise()+feasTol,
		Elapsed:    since(start),
		Evals:      evals,
	}, nil
}
