package solver

import (
	"math"
	"testing"

	"thermosc/internal/power"
	"thermosc/internal/thermal"
)

func TestEXSParallelMatchesSequential(t *testing.T) {
	for _, cfg := range []struct {
		rows, cols, levels int
		tmax               float64
	}{
		{2, 1, 2, 65}, {3, 1, 3, 60}, {3, 2, 2, 55}, {3, 3, 3, 65}, {3, 3, 4, 55},
	} {
		p := problem(t, cfg.rows, cfg.cols, cfg.levels, cfg.tmax)
		seq, err := EXS(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 0} {
			par, err := EXSParallel(p, workers)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(par.Throughput-seq.Throughput) > 1e-9 {
				t.Fatalf("%+v workers=%d: parallel %v != sequential %v",
					cfg, workers, par.Throughput, seq.Throughput)
			}
			if par.Feasible != seq.Feasible {
				t.Fatalf("%+v workers=%d: feasibility mismatch", cfg, workers)
			}
			if par.Name != "EXS-parallel" {
				t.Fatalf("name = %q", par.Name)
			}
		}
	}
}

func TestEXSParallelSingleCoreFallback(t *testing.T) {
	md, err := thermal.Default(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := power.PaperLevels(3)
	if err != nil {
		t.Fatal(err)
	}
	p := Problem{Model: md, Levels: ls, TmaxC: 65}
	res, err := EXSParallel(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := EXS(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Throughput-seq.Throughput) > 1e-9 {
		t.Fatalf("fallback mismatch: %v vs %v", res.Throughput, seq.Throughput)
	}
}

func TestEXSParallelInfeasible(t *testing.T) {
	p := problem(t, 3, 1, 2, 38)
	p.DisallowOff = true
	res, err := EXSParallel(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible || res.Schedule != nil {
		t.Fatal("expected infeasible")
	}
}

func TestEXSParallelRace(t *testing.T) {
	// Exercised under -race in CI: many concurrent searches on one model.
	p := problem(t, 3, 2, 3, 55)
	done := make(chan error, 4)
	for k := 0; k < 4; k++ {
		go func() {
			_, err := EXSParallel(p, 3)
			done <- err
		}()
	}
	for k := 0; k < 4; k++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
