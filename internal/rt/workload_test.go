package rt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUUniFastSumsExactly(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		total := 0.1 + r.Float64()*8
		utils, err := UUniFast(r, n, total)
		if err != nil {
			return false
		}
		var sum float64
		for _, u := range utils {
			if u < -1e-12 {
				return false
			}
			sum += u
		}
		return math.Abs(sum-total) < 1e-9*math.Max(1, total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUUniFastValidation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if _, err := UUniFast(r, 0, 1); err == nil {
		t.Fatal("n=0 must error")
	}
	if _, err := UUniFast(r, 3, 0); err == nil {
		t.Fatal("zero total must error")
	}
	// n=1 returns the total directly.
	u, err := UUniFast(r, 1, 0.7)
	if err != nil || len(u) != 1 || u[0] != 0.7 {
		t.Fatalf("n=1: %v %v", u, err)
	}
}

func TestGenerateRespectsSpec(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	spec := DefaultGenSpec(8, 2.5)
	for trial := 0; trial < 50; trial++ {
		tasks, err := Generate(r, spec)
		if err != nil {
			t.Fatal(err)
		}
		if len(tasks) != 8 {
			t.Fatalf("got %d tasks", len(tasks))
		}
		var sum float64
		for _, task := range tasks {
			if task.Period < spec.PeriodMin-1e-12 || task.Period > spec.PeriodMax+1e-12 {
				t.Fatalf("period %v outside range", task.Period)
			}
			u := task.Utilization()
			if u > spec.UtilCap+1e-9 {
				t.Fatalf("utilization %v above cap", u)
			}
			sum += u
		}
		if math.Abs(sum-2.5) > 1e-6 {
			t.Fatalf("total utilization %v, want 2.5", sum)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	spec := DefaultGenSpec(3, 1)
	spec.PeriodMin = 0
	if _, err := Generate(r, spec); err == nil {
		t.Fatal("zero min period must error")
	}
	spec = DefaultGenSpec(3, 1)
	spec.PeriodMax = spec.PeriodMin / 2
	if _, err := Generate(r, spec); err == nil {
		t.Fatal("inverted period range must error")
	}
	// Impossible cap: 2 tasks summing to 3.0 with per-task cap 1.2 is
	// infeasible (max 2.4), so rejection sampling must give up cleanly.
	spec = DefaultGenSpec(2, 3.0)
	if _, err := Generate(r, spec); err == nil {
		t.Fatal("unsatisfiable cap must error")
	}
}
