// Package rt layers a periodic hard real-time task model over the
// thermal schedulers: given implicit-deadline tasks (WCET at unit speed,
// period), it partitions them onto cores and decides admissibility
// against the sustained per-core speeds a thermally-constrained schedule
// provides. This is the workload model behind the paper's framing (its
// antecedents [2], [25], [30] are all periodic real-time scheduling
// papers): a task set is thermally schedulable iff some peak-temperature-
// feasible schedule sustains every core's required utilization.
//
// Speed semantics: a core running the paper's two-mode oscillation at
// mean speed s completes s units of work per unit time; with the
// oscillation cycle (milliseconds) far below task periods (tens of
// milliseconds and up), EDF on the oscillating core behaves as EDF on a
// uniform speed-s processor, which schedules any implicit-deadline task
// set with utilization ≤ s. The admission test therefore compares
// per-core utilization against the plan's per-core mean speed, with the
// fluid approximation guarded by a cycle-vs-period ratio check.
package rt

import (
	"errors"
	"fmt"
	"sort"
)

// Task is a periodic implicit-deadline hard real-time task.
type Task struct {
	Name string
	// WCET is the worst-case execution time in seconds when running at
	// unit speed (the paper's normalized speed 1.0).
	WCET float64
	// Period is the activation period (= relative deadline) in seconds.
	Period float64
}

// Utilization returns WCET/Period, the fraction of a unit-speed core the
// task consumes.
func (t Task) Utilization() float64 { return t.WCET / t.Period }

// Validate checks the task parameters.
func (t Task) Validate() error {
	if t.WCET <= 0 {
		return fmt.Errorf("rt: task %q has non-positive WCET %v", t.Name, t.WCET)
	}
	if t.Period <= 0 {
		return fmt.Errorf("rt: task %q has non-positive period %v", t.Name, t.Period)
	}
	return nil
}

// Partition assigns each task to one core.
type Partition struct {
	// TaskCore[i] is the core index of task i.
	TaskCore []int
	// CoreUtil[c] is the summed utilization on core c.
	CoreUtil []float64
}

// Tasks returns the indices of the tasks on core c, ascending.
func (p *Partition) Tasks(c int) []int {
	var out []int
	for i, cc := range p.TaskCore {
		if cc == c {
			out = append(out, i)
		}
	}
	return out
}

// MaxUtil returns the highest per-core utilization.
func (p *Partition) MaxUtil() float64 {
	var m float64
	for _, u := range p.CoreUtil {
		if u > m {
			m = u
		}
	}
	return m
}

// FirstFitDecreasing partitions tasks onto n cores: tasks sorted by
// decreasing utilization, each placed on the least-loaded core (a
// worst-fit flavor that balances thermal load, which matters more here
// than bin-packing tightness: an even spread minimizes the hottest
// core's required speed). capacity bounds the per-core utilization (use
// the platform's top speed); an error identifies the first task that
// cannot fit.
func FirstFitDecreasing(tasks []Task, n int, capacity float64) (*Partition, error) {
	if n <= 0 {
		return nil, errors.New("rt: need at least one core")
	}
	if capacity <= 0 {
		return nil, errors.New("rt: non-positive capacity")
	}
	for _, t := range tasks {
		if err := t.Validate(); err != nil {
			return nil, err
		}
	}
	order := make([]int, len(tasks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return tasks[order[a]].Utilization() > tasks[order[b]].Utilization()
	})
	part := &Partition{
		TaskCore: make([]int, len(tasks)),
		CoreUtil: make([]float64, n),
	}
	for _, ti := range order {
		u := tasks[ti].Utilization()
		// Least-loaded core that still fits.
		best := -1
		for c := 0; c < n; c++ {
			if part.CoreUtil[c]+u > capacity+1e-12 {
				continue
			}
			if best == -1 || part.CoreUtil[c] < part.CoreUtil[best] {
				best = c
			}
		}
		if best == -1 {
			return nil, fmt.Errorf("rt: task %q (u=%.3f) does not fit on any core (capacity %.3f)",
				tasks[ti].Name, u, capacity)
		}
		part.TaskCore[ti] = best
		part.CoreUtil[best] += u
	}
	return part, nil
}

// PartitionBySpeeds places tasks (worst-fit decreasing) onto cores with
// HETEROGENEOUS sustained speeds: each task goes to the core with the
// largest remaining speed margin, so off or throttled cores (an EXS
// assignment may shut cores down entirely) are only used when they can
// actually carry load. The partition is best-effort: if the set does not
// fit, it is still returned with overloaded cores, and Admissible reports
// the negative margins.
func PartitionBySpeeds(tasks []Task, speeds []float64) (*Partition, error) {
	if len(speeds) == 0 {
		return nil, errors.New("rt: no cores")
	}
	for _, t := range tasks {
		if err := t.Validate(); err != nil {
			return nil, err
		}
	}
	order := make([]int, len(tasks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return tasks[order[a]].Utilization() > tasks[order[b]].Utilization()
	})
	part := &Partition{
		TaskCore: make([]int, len(tasks)),
		CoreUtil: make([]float64, len(speeds)),
	}
	for _, ti := range order {
		best := 0
		bestMargin := speeds[0] - part.CoreUtil[0]
		for c := 1; c < len(speeds); c++ {
			if m := speeds[c] - part.CoreUtil[c]; m > bestMargin {
				best, bestMargin = c, m
			}
		}
		part.TaskCore[ti] = best
		part.CoreUtil[best] += tasks[ti].Utilization()
	}
	return part, nil
}

// Admission is the outcome of an admissibility test.
type Admission struct {
	Admissible bool
	// Margins[c] = coreSpeeds[c] − CoreUtil[c]; negative entries identify
	// the overloaded cores.
	Margins []float64
	// FluidOK reports whether the oscillation-cycle / shortest-period
	// ratio supports the fluid (uniform-speed) approximation.
	FluidOK bool
}

// fluidRatio is the largest acceptable oscillation-cycle to task-period
// ratio for the uniform-speed approximation; one tenth keeps per-job
// speed variation under a few percent of the job's window.
const fluidRatio = 0.1

// Admissible tests EDF admissibility of the partition against sustained
// per-core speeds. cycleS is the speed pattern's period (0 for constant
// schedules); minPeriod the shortest task period.
func Admissible(part *Partition, coreSpeeds []float64, cycleS, minPeriod float64) (*Admission, error) {
	if len(coreSpeeds) != len(part.CoreUtil) {
		return nil, fmt.Errorf("rt: %d core speeds for %d cores", len(coreSpeeds), len(part.CoreUtil))
	}
	adm := &Admission{
		Admissible: true,
		Margins:    make([]float64, len(coreSpeeds)),
		FluidOK:    cycleS <= 0 || minPeriod <= 0 || cycleS <= fluidRatio*minPeriod,
	}
	for c, u := range part.CoreUtil {
		adm.Margins[c] = coreSpeeds[c] - u
		if adm.Margins[c] < -1e-12 {
			adm.Admissible = false
		}
	}
	if !adm.FluidOK {
		adm.Admissible = false
	}
	return adm, nil
}

// MinPeriod returns the shortest period in the task set (0 for an empty
// set).
func MinPeriod(tasks []Task) float64 {
	if len(tasks) == 0 {
		return 0
	}
	m := tasks[0].Period
	for _, t := range tasks[1:] {
		if t.Period < m {
			m = t.Period
		}
	}
	return m
}

// TotalUtilization sums the task utilizations.
func TotalUtilization(tasks []Task) float64 {
	var s float64
	for _, t := range tasks {
		s += t.Utilization()
	}
	return s
}
