package rt

import (
	"fmt"
	"math"
	"math/rand"
)

// UUniFast generates n task utilizations summing exactly to totalU with
// the classic unbiased UUniFast algorithm (Bini & Buttazzo), the standard
// way to sample schedulability experiments without skewing the
// distribution of individual utilizations.
func UUniFast(r *rand.Rand, n int, totalU float64) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("rt: UUniFast needs n ≥ 1, got %d", n)
	}
	if totalU <= 0 {
		return nil, fmt.Errorf("rt: UUniFast needs positive total utilization, got %v", totalU)
	}
	out := make([]float64, n)
	sum := totalU
	for i := 1; i < n; i++ {
		next := sum * math.Pow(r.Float64(), 1/float64(n-i))
		out[i-1] = sum - next
		sum = next
	}
	out[n-1] = sum
	return out, nil
}

// GenSpec controls random task-set generation.
type GenSpec struct {
	NumTasks  int
	TotalUtil float64
	// Periods are drawn log-uniformly from [PeriodMin, PeriodMax] seconds
	// (log-uniform is the conventional choice; it avoids harmonic bias).
	PeriodMin, PeriodMax float64
	// UtilCap rejects task sets containing an individual utilization
	// above this value (0 disables the cap).
	UtilCap float64
}

// DefaultGenSpec returns a spec typical of embedded control workloads:
// periods 10–200 ms, per-task utilization capped at 1.2 (must fit the top
// DVFS speed of 1.3 with margin).
func DefaultGenSpec(numTasks int, totalU float64) GenSpec {
	return GenSpec{
		NumTasks:  numTasks,
		TotalUtil: totalU,
		PeriodMin: 10e-3,
		PeriodMax: 200e-3,
		UtilCap:   1.2,
	}
}

// maxGenAttempts bounds rejection sampling in Generate.
const maxGenAttempts = 1000

// Generate samples one random task set from the spec.
func Generate(r *rand.Rand, spec GenSpec) ([]Task, error) {
	if spec.PeriodMin <= 0 || spec.PeriodMax < spec.PeriodMin {
		return nil, fmt.Errorf("rt: invalid period range [%v, %v]", spec.PeriodMin, spec.PeriodMax)
	}
	logMin, logMax := math.Log(spec.PeriodMin), math.Log(spec.PeriodMax)
	for attempt := 0; attempt < maxGenAttempts; attempt++ {
		utils, err := UUniFast(r, spec.NumTasks, spec.TotalUtil)
		if err != nil {
			return nil, err
		}
		if spec.UtilCap > 0 {
			ok := true
			for _, u := range utils {
				if u > spec.UtilCap {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
		}
		tasks := make([]Task, spec.NumTasks)
		for i, u := range utils {
			period := math.Exp(logMin + r.Float64()*(logMax-logMin))
			tasks[i] = Task{
				Name:   fmt.Sprintf("t%d", i),
				WCET:   u * period,
				Period: period,
			}
		}
		return tasks, nil
	}
	return nil, fmt.Errorf("rt: could not sample a task set with per-task utilization ≤ %v after %d attempts",
		spec.UtilCap, maxGenAttempts)
}
