package rt

import (
	"fmt"
	"math"
	"sort"
)

// SpeedSeg is one stretch of a core's periodic speed profile.
type SpeedSeg struct {
	Length float64 // seconds
	Speed  float64 // work units per second (0 while off or stalled)
}

// EDFResult summarizes a job-level EDF simulation.
type EDFResult struct {
	JobsReleased  int
	JobsCompleted int
	DeadlineMiss  int
	// MaxLatenessS is the largest completion lateness observed among
	// COMPLETED jobs (missed jobs are dropped and counted in
	// DeadlineMiss).
	MaxLatenessS float64
	// WorkDone is the total work units completed.
	WorkDone float64
}

// nsPerSec converts the simulator's integer-nanosecond timeline. All
// event arithmetic is integral, so the event loop provably advances — a
// float timeline invites epsilon-sized spins when completions, releases
// and segment boundaries coincide.
const nsPerSec = 1e9

// SimulateEDF runs earliest-deadline-first on ONE core whose speed follows
// the given periodic profile, releasing every task synchronously at t = 0
// (the critical instant) and repeating for the horizon. A job that reaches
// its deadline unfinished counts as a miss and is dropped (its remaining
// demand disappears — the optimistic convention, so a single reported miss
// is trustworthy evidence of overload).
//
// This is the executable check behind the fluid-EDF admission test: a
// partition admitted by Admissible must simulate without misses, while
// demand exceeding the profile's mean speed must eventually miss.
func SimulateEDF(tasks []Task, profile []SpeedSeg, horizon float64) (*EDFResult, error) {
	if len(tasks) == 0 {
		return &EDFResult{}, nil
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("rt: non-positive horizon %v", horizon)
	}
	// Integerize the profile.
	var segNS []int64
	var speeds []float64
	var periodNS int64
	for _, s := range profile {
		if s.Length < 0 || s.Speed < 0 || math.IsNaN(s.Length) || math.IsNaN(s.Speed) {
			return nil, fmt.Errorf("rt: invalid speed segment %+v", s)
		}
		ns := int64(math.Round(s.Length * nsPerSec))
		if ns == 0 {
			continue
		}
		segNS = append(segNS, ns)
		speeds = append(speeds, s.Speed)
		periodNS += ns
	}
	if periodNS <= 0 {
		return nil, fmt.Errorf("rt: empty speed profile")
	}
	taskPeriodNS := make([]int64, len(tasks))
	for i, t := range tasks {
		if err := t.Validate(); err != nil {
			return nil, err
		}
		taskPeriodNS[i] = int64(math.Round(t.Period * nsPerSec))
		if taskPeriodNS[i] <= 0 {
			return nil, fmt.Errorf("rt: task %q period too small to resolve", t.Name)
		}
	}
	horizonNS := int64(math.Round(horizon * nsPerSec))

	// speedAt returns the current segment's speed and its absolute end.
	segStart := make([]int64, len(segNS)+1)
	for i, ns := range segNS {
		segStart[i+1] = segStart[i] + ns
	}
	speedAt := func(now int64) (float64, int64) {
		off := now % periodNS
		base := now - off
		idx := sort.Search(len(segNS), func(i int) bool { return segStart[i+1] > off })
		return speeds[idx], base + segStart[idx+1]
	}

	type job struct {
		deadline int64
		remain   float64
	}
	res := &EDFResult{}
	var ready []job
	nextRelease := make([]int64, len(tasks))

	var now int64
	for now < horizonNS {
		// Release due jobs.
		for i := range tasks {
			for nextRelease[i] <= now && nextRelease[i] < horizonNS {
				ready = append(ready, job{
					deadline: nextRelease[i] + taskPeriodNS[i],
					remain:   tasks[i].WCET,
				})
				res.JobsReleased++
				nextRelease[i] += taskPeriodNS[i]
			}
		}
		// Drop expired jobs.
		kept := ready[:0]
		for _, j := range ready {
			if j.deadline <= now && j.remain > 0 {
				res.DeadlineMiss++
				continue
			}
			kept = append(kept, j)
		}
		ready = kept

		// Next event: release, segment boundary, running job's deadline
		// or completion.
		next := horizonNS
		for i := range tasks {
			if nextRelease[i] > now && nextRelease[i] < next {
				next = nextRelease[i]
			}
		}
		speed, segEnd := speedAt(now)
		if segEnd < next {
			next = segEnd
		}
		if len(ready) == 0 {
			now = next
			continue
		}
		sort.SliceStable(ready, func(a, b int) bool { return ready[a].deadline < ready[b].deadline })
		j := &ready[0]
		if j.deadline > now && j.deadline < next {
			next = j.deadline
		}
		dt := next - now
		if dt <= 0 {
			// Only possible when j.deadline == now, handled by the drop
			// pass on the next iteration; force progress by one tick.
			now++
			continue
		}
		if speed > 0 {
			finishNS := int64(math.Ceil(j.remain / speed * nsPerSec))
			if finishNS <= dt {
				if finishNS < 1 {
					finishNS = 1
				}
				now += finishNS
				res.JobsCompleted++
				res.WorkDone += j.remain
				if late := float64(now-j.deadline) / nsPerSec; late > res.MaxLatenessS {
					res.MaxLatenessS = late
				}
				ready = ready[1:]
				continue
			}
			j.remain -= speed * float64(dt) / nsPerSec
			res.WorkDone += speed * float64(dt) / nsPerSec
		}
		now = next
	}
	return res, nil
}

// ProfileMeanSpeed returns the work per second the profile sustains.
func ProfileMeanSpeed(profile []SpeedSeg) float64 {
	var work, span float64
	for _, s := range profile {
		work += s.Speed * s.Length
		span += s.Length
	}
	if span == 0 {
		return 0
	}
	return work / span
}
