package rt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTaskValidate(t *testing.T) {
	if err := (Task{Name: "a", WCET: 1, Period: 10}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Task{Name: "b", WCET: 0, Period: 10}).Validate(); err == nil {
		t.Fatal("zero WCET must error")
	}
	if err := (Task{Name: "c", WCET: 1, Period: -1}).Validate(); err == nil {
		t.Fatal("negative period must error")
	}
	u := Task{WCET: 2, Period: 8}.Utilization()
	if u != 0.25 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestFirstFitDecreasingBalances(t *testing.T) {
	tasks := []Task{
		{Name: "t1", WCET: 6, Period: 10}, // 0.6
		{Name: "t2", WCET: 5, Period: 10}, // 0.5
		{Name: "t3", WCET: 4, Period: 10}, // 0.4
		{Name: "t4", WCET: 3, Period: 10}, // 0.3
	}
	part, err := FirstFitDecreasing(tasks, 2, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	// Worst-fit decreasing: 0.6→c0, 0.5→c1, 0.4→c1 (0.9), 0.3→c0 (0.9).
	if math.Abs(part.CoreUtil[0]-0.9) > 1e-12 || math.Abs(part.CoreUtil[1]-0.9) > 1e-12 {
		t.Fatalf("unbalanced: %v", part.CoreUtil)
	}
	if part.MaxUtil() != 0.9 {
		t.Fatalf("MaxUtil = %v", part.MaxUtil())
	}
	// Tasks() inverts TaskCore.
	seen := 0
	for c := 0; c < 2; c++ {
		for _, ti := range part.Tasks(c) {
			if part.TaskCore[ti] != c {
				t.Fatal("Tasks/TaskCore inconsistent")
			}
			seen++
		}
	}
	if seen != len(tasks) {
		t.Fatalf("placed %d of %d tasks", seen, len(tasks))
	}
}

func TestFirstFitDecreasingErrors(t *testing.T) {
	tasks := []Task{{Name: "big", WCET: 14, Period: 10}} // u = 1.4
	if _, err := FirstFitDecreasing(tasks, 4, 1.3); err == nil {
		t.Fatal("oversized task must be rejected")
	}
	if _, err := FirstFitDecreasing(nil, 0, 1.3); err == nil {
		t.Fatal("zero cores must error")
	}
	if _, err := FirstFitDecreasing(nil, 2, 0); err == nil {
		t.Fatal("zero capacity must error")
	}
	bad := []Task{{Name: "x", WCET: -1, Period: 1}}
	if _, err := FirstFitDecreasing(bad, 2, 1.3); err == nil {
		t.Fatal("invalid task must be rejected")
	}
}

func TestAdmissible(t *testing.T) {
	part := &Partition{TaskCore: []int{0, 1}, CoreUtil: []float64{0.8, 0.5}}
	adm, err := Admissible(part, []float64{0.9, 0.6}, 2e-3, 50e-3)
	if err != nil {
		t.Fatal(err)
	}
	if !adm.Admissible || !adm.FluidOK {
		t.Fatalf("should admit: %+v", adm)
	}
	if math.Abs(adm.Margins[0]-0.1) > 1e-12 {
		t.Fatalf("margin = %v", adm.Margins[0])
	}
	// Overloaded core.
	adm, err = Admissible(part, []float64{0.7, 0.6}, 2e-3, 50e-3)
	if err != nil {
		t.Fatal(err)
	}
	if adm.Admissible {
		t.Fatal("overload must be rejected")
	}
	// Fluid approximation violated: oscillation cycle near task period.
	adm, err = Admissible(part, []float64{0.9, 0.6}, 20e-3, 50e-3)
	if err != nil {
		t.Fatal(err)
	}
	if adm.FluidOK || adm.Admissible {
		t.Fatal("slow oscillation must fail the fluid check")
	}
	if _, err := Admissible(part, []float64{1}, 0, 0); err == nil {
		t.Fatal("dimension mismatch must error")
	}
}

func TestPartitionBySpeeds(t *testing.T) {
	tasks := []Task{
		{Name: "a", WCET: 6, Period: 10}, // 0.6
		{Name: "b", WCET: 5, Period: 10}, // 0.5
		{Name: "c", WCET: 4, Period: 10}, // 0.4
	}
	// Core 1 is off: nothing may land there while core 0 and 2 have room.
	speeds := []float64{1.3, 0, 1.3}
	part, err := PartitionBySpeeds(tasks, speeds)
	if err != nil {
		t.Fatal(err)
	}
	if part.CoreUtil[1] != 0 {
		t.Fatalf("off core received load: %v", part.CoreUtil)
	}
	adm, err := Admissible(part, speeds, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !adm.Admissible {
		t.Fatalf("should admit onto the two fast cores: %+v", adm)
	}
	// Overload: best-effort placement with negative margins, not an error.
	heavy := []Task{
		{Name: "x", WCET: 12, Period: 10},
		{Name: "y", WCET: 12, Period: 10},
		{Name: "z", WCET: 12, Period: 10},
	}
	part, err = PartitionBySpeeds(heavy, speeds)
	if err != nil {
		t.Fatal(err)
	}
	adm, err = Admissible(part, speeds, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if adm.Admissible {
		t.Fatal("overload must not be admissible")
	}
	// Errors.
	if _, err := PartitionBySpeeds(tasks, nil); err == nil {
		t.Fatal("no cores must error")
	}
	if _, err := PartitionBySpeeds([]Task{{WCET: -1, Period: 1}}, speeds); err == nil {
		t.Fatal("invalid task must error")
	}
}

func TestHelpers(t *testing.T) {
	tasks := []Task{{WCET: 1, Period: 4}, {WCET: 1, Period: 2}}
	if MinPeriod(tasks) != 2 {
		t.Fatalf("MinPeriod = %v", MinPeriod(tasks))
	}
	if MinPeriod(nil) != 0 {
		t.Fatal("empty MinPeriod should be 0")
	}
	if math.Abs(TotalUtilization(tasks)-0.75) > 1e-12 {
		t.Fatalf("TotalUtilization = %v", TotalUtilization(tasks))
	}
}

// Properties of the partitioner: every task is placed exactly once, core
// utilizations are consistent, no core exceeds capacity, and the most
// loaded core carries at most the least loaded plus the largest task.
func TestFirstFitDecreasingProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		cap := 1.0 + r.Float64()*0.5
		var tasks []Task
		var maxU float64
		for i := 0; i < 1+r.Intn(20); i++ {
			u := 0.05 + r.Float64()*0.5
			tasks = append(tasks, Task{Name: "t", WCET: u, Period: 1})
			if u > maxU {
				maxU = u
			}
		}
		part, err := FirstFitDecreasing(tasks, n, cap)
		if err != nil {
			// Legitimate when the load genuinely does not fit.
			return TotalUtilization(tasks) > float64(n)*cap-maxU
		}
		sums := make([]float64, n)
		for i, c := range part.TaskCore {
			if c < 0 || c >= n {
				return false
			}
			sums[c] += tasks[i].Utilization()
		}
		lo, hi := math.Inf(1), 0.0
		for c := 0; c < n; c++ {
			if math.Abs(sums[c]-part.CoreUtil[c]) > 1e-9 {
				return false
			}
			if part.CoreUtil[c] > cap+1e-9 {
				return false
			}
			if part.CoreUtil[c] < lo {
				lo = part.CoreUtil[c]
			}
			if part.CoreUtil[c] > hi {
				hi = part.CoreUtil[c]
			}
		}
		// Worst-fit balance bound.
		return hi <= lo+maxU+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
