package rt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func constantProfile(speed float64) []SpeedSeg {
	return []SpeedSeg{{Length: 10e-3, Speed: speed}}
}

// twoModeProfile oscillates lo/hi with the given high fraction and cycle.
func twoModeProfile(lo, hi, hiFrac, cycle float64) []SpeedSeg {
	return []SpeedSeg{
		{Length: (1 - hiFrac) * cycle, Speed: lo},
		{Length: hiFrac * cycle, Speed: hi},
	}
}

func TestEDFConstantSpeedClassicBound(t *testing.T) {
	// Classic EDF: utilization ≤ speed ⇔ schedulable (implicit deadlines).
	tasks := []Task{
		{Name: "a", WCET: 30e-3, Period: 100e-3}, // 0.3
		{Name: "b", WCET: 20e-3, Period: 40e-3},  // 0.5
	}
	res, err := SimulateEDF(tasks, constantProfile(0.85), 4.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMiss != 0 {
		t.Fatalf("u=0.8 on speed 0.85 missed %d deadlines", res.DeadlineMiss)
	}
	if res.JobsReleased == 0 || res.JobsCompleted == 0 {
		t.Fatalf("no work simulated: %+v", res)
	}
	// Overload: speed below utilization must miss.
	res, err = SimulateEDF(tasks, constantProfile(0.7), 4.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMiss == 0 {
		t.Fatal("u=0.8 on speed 0.7 should miss deadlines")
	}
}

func TestEDFOscillatingProfileMatchesFluidModel(t *testing.T) {
	// Fast oscillation (2 ms cycle) vs 40+ ms periods: the fluid
	// approximation says mean speed is what matters.
	profile := twoModeProfile(0.6, 1.3, 0.5, 2e-3) // mean 0.95
	mean := ProfileMeanSpeed(profile)
	if math.Abs(mean-0.95) > 1e-12 {
		t.Fatalf("mean = %v", mean)
	}
	tasks := []Task{
		{Name: "a", WCET: 36e-3, Period: 80e-3}, // 0.45
		{Name: "b", WCET: 18e-3, Period: 40e-3}, // 0.45
	}
	res, err := SimulateEDF(tasks, profile, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMiss != 0 {
		t.Fatalf("u=0.9 on mean 0.95 fast oscillation missed %d", res.DeadlineMiss)
	}

	// The same demand on a SLOW oscillation (cycle comparable to the
	// periods) is exactly what the fluid guard refuses to certify —
	// demonstrate that it can actually miss.
	slow := twoModeProfile(0.6, 1.3, 0.5, 60e-3)
	res, err = SimulateEDF(tasks, slow, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMiss == 0 {
		t.Log("slow oscillation happened to survive this phase — acceptable, the guard is conservative")
	}
}

func TestEDFValidation(t *testing.T) {
	tasks := []Task{{Name: "a", WCET: 1e-3, Period: 10e-3}}
	if _, err := SimulateEDF(tasks, nil, 1); err == nil {
		t.Fatal("empty profile must error")
	}
	if _, err := SimulateEDF(tasks, constantProfile(1), 0); err == nil {
		t.Fatal("zero horizon must error")
	}
	if _, err := SimulateEDF(tasks, []SpeedSeg{{Length: -1, Speed: 1}}, 1); err == nil {
		t.Fatal("negative segment must error")
	}
	if _, err := SimulateEDF([]Task{{WCET: -1, Period: 1}}, constantProfile(1), 1); err == nil {
		t.Fatal("invalid task must error")
	}
	res, err := SimulateEDF(nil, constantProfile(1), 1)
	if err != nil || res.JobsReleased != 0 {
		t.Fatalf("empty task set: %+v %v", res, err)
	}
}

// Property: the fluid-EDF admission verdict is confirmed by job-level
// simulation — admitted sets never miss on a fast oscillating profile,
// PROVIDED the utilization margin exceeds the fluid-approximation slack.
// The fluid model overstates the supply of an oscillating profile over a
// finite window by up to (hi−lo)·cycle units of work (the partial cycle
// at each window boundary), which against the shortest deadline
// PeriodMin costs (hi−lo)·cycle/PeriodMin of effective speed. A set
// admitted with less margin than that can genuinely miss — see
// TestEDFFluidAdmissionBoundaryCounterexample.
func TestEDFConfirmsAdmissionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		profile := twoModeProfile(0.6, 1.3, 0.2+0.6*r.Float64(), 2e-3)
		mean := ProfileMeanSpeed(profile)
		spec := DefaultGenSpec(1+r.Intn(4), 0.2+r.Float64()*0.7)
		spec.PeriodMin, spec.PeriodMax = 40e-3, 200e-3
		spec.UtilCap = 0.95
		tasks, err := Generate(r, spec)
		if err != nil {
			return true // unsatisfiable spec draw; not this property's concern
		}
		util := TotalUtilization(tasks)
		res, err := SimulateEDF(tasks, profile, 3.0)
		if err != nil {
			return false
		}
		slack := (1.3 - 0.6) * 2e-3 / spec.PeriodMin
		if util <= mean-slack {
			return res.DeadlineMiss == 0
		}
		return true // inside the slack band (or overloaded): may or may not miss
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// The slack band in the admission property is not paranoia: this seed
// draws a single task whose utilization sits 0.0014 below the profile's
// mean speed — fluid-admitted — yet the job-level simulation misses,
// because the supply an oscillating profile delivers inside one 76 ms
// deadline window falls short of mean·window by more than the margin.
func TestEDFFluidAdmissionBoundaryCounterexample(t *testing.T) {
	r := rand.New(rand.NewSource(5066947636796954867))
	profile := twoModeProfile(0.6, 1.3, 0.2+0.6*r.Float64(), 2e-3)
	mean := ProfileMeanSpeed(profile)
	spec := DefaultGenSpec(1+r.Intn(4), 0.2+r.Float64()*0.7)
	spec.PeriodMin, spec.PeriodMax = 40e-3, 200e-3
	spec.UtilCap = 0.95
	tasks, err := Generate(r, spec)
	if err != nil {
		t.Fatal(err)
	}
	util := TotalUtilization(tasks)
	if util > mean-1e-9 {
		t.Fatalf("draw changed: util %v vs mean %v no longer fluid-admitted", util, mean)
	}
	res, err := SimulateEDF(tasks, profile, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMiss == 0 {
		t.Fatal("counterexample evaporated: fluid-admitted boundary set no longer misses")
	}
}

// Work conservation: completed work never exceeds what the profile can
// supply, and with heavy overload the processor saturates near capacity.
func TestEDFWorkConservation(t *testing.T) {
	profile := twoModeProfile(0.6, 1.3, 0.5, 2e-3)
	tasks := []Task{
		{Name: "x", WCET: 90e-3, Period: 100e-3},
		{Name: "y", WCET: 90e-3, Period: 100e-3},
	}
	horizon := 2.0
	res, err := SimulateEDF(tasks, profile, horizon)
	if err != nil {
		t.Fatal(err)
	}
	capacity := ProfileMeanSpeed(profile) * horizon
	if res.WorkDone > capacity+1e-6 {
		t.Fatalf("did %v work with capacity %v", res.WorkDone, capacity)
	}
	if res.WorkDone < 0.8*capacity {
		t.Fatalf("overloaded EDF should saturate: %v of %v", res.WorkDone, capacity)
	}
	if res.DeadlineMiss == 0 {
		t.Fatal("1.8 utilization on 0.95 capacity must miss")
	}
}
