package expr

import (
	"fmt"
	"io"

	"thermosc/internal/power"
	"thermosc/internal/report"
	"thermosc/internal/solver"
)

// Scaling extends Table V past the paper's 9 cores: AO's cost on square
// grids up to 6×6 (73 thermal nodes). Exhaustive search is hopeless out
// here (2^36 states at 2 levels), while AO's per-platform cost stays
// dominated by one O(n³) eigendecomposition per candidate m plus
// O(cores · n²) stable solves — comfortably interactive. The table
// reports wall time, evaluation counts, and the achieved throughput,
// verifying feasibility at every size.
func Scaling(w io.Writer, cfg Config) error {
	grids := [][2]int{{2, 2}, {3, 3}, {4, 4}, {5, 5}, {6, 6}}
	if cfg.Quick {
		grids = [][2]int{{2, 2}, {3, 3}, {4, 4}}
	}
	levels, err := power.PaperLevels(2)
	if err != nil {
		return err
	}
	const tmaxC = 65.0

	t := report.NewTable("AO scaling beyond the paper (2 levels, Tmax = 65 °C)",
		"grid", "cores", "thermal nodes", "AO time [ms]", "evals", "throughput", "m", "feasible")
	for _, gcfg := range grids {
		md, err := platform(gcfg[0], gcfg[1])
		if err != nil {
			return err
		}
		p := problem(md, levels, tmaxC)
		res, err := solver.AO(p)
		if err != nil {
			return err
		}
		if !res.Feasible {
			return fmt.Errorf("expr: scaling %dx%d infeasible", gcfg[0], gcfg[1])
		}
		ms := float64(res.Elapsed.Microseconds()) / 1e3
		t.AddRowf(fmt.Sprintf("%dx%d", gcfg[0], gcfg[1]), md.NumCores(), md.NumNodes(),
			ms, res.Evals, res.Throughput, res.M, res.Feasible)

		// Sanity shape: interactive at every size under a budget generous
		// enough to survive shared-machine noise and parallel experiment
		// runs (wall-clock ratios are too fragile to assert on). The real
		// exponential-vs-polynomial evidence is the eval column against
		// Algorithm 1's 2^cores.
		if res.Elapsed.Seconds() > 30 {
			return fmt.Errorf("expr: scaling %dx%d took %v — no longer interactive", gcfg[0], gcfg[1], res.Elapsed)
		}
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "At 36 cores Algorithm 1 would enumerate 2^36 ≈ 7·10^10 states; AO stays interactive.\n")
	fmt.Fprintf(w, "The collapsing throughput is the dark-silicon squeeze: the package (fixed sink) cannot cool ever more cores, so the sustainable per-core speed falls toward shutdown — the phenomenon the paper's ref. [7] names.\n\n")
	return nil
}
