package expr

import (
	"fmt"
	"io"

	"thermosc/internal/floorplan"
	"thermosc/internal/power"
	"thermosc/internal/report"
	"thermosc/internal/schedule"
	"thermosc/internal/sim"
	"thermosc/internal/solver"
	"thermosc/internal/thermal"
)

// Stacked exercises the paper's §I motivation — 3D integration makes the
// thermal problem harder — by running the full AO/EXS/LNS pipeline on a
// two-layer 3×1 stack (6 cores) against the planar 3×2 chip with the same
// core count, and by checking that Theorem 5's monotone peak decrease
// carries over to the stacked LTI model unchanged.
func Stacked(w io.Writer, cfg Config) error {
	pm := power.DefaultModel()
	planar, err := platform(3, 2)
	if err != nil {
		return err
	}
	stack, err := thermal.NewStackedModel(floorplan.MustGrid(3, 1, 4e-3), thermal.DefaultStack(2), pm)
	if err != nil {
		return err
	}
	levels, err := power.PaperLevels(2)
	if err != nil {
		return err
	}
	const tmaxC = 65.0

	t := report.NewTable("AO on planar 3×2 vs stacked 3×1×2 (6 cores each, Tmax = 65 °C, 2 levels)",
		"platform", "LNS", "EXS", "AO", "AO peak [°C]", "AO m")
	type row struct{ lns, exs, ao float64 }
	var rows []row
	for _, entry := range []struct {
		name string
		md   *thermal.Model
	}{
		{"planar 3×2", planar},
		{"stacked 3×1×2", stack},
	} {
		p := problem(entry.md, levels, tmaxC)
		lns, err := solver.LNS(p)
		if err != nil {
			return err
		}
		exs, err := solver.EXS(p)
		if err != nil {
			return err
		}
		ao, err := solver.AO(p)
		if err != nil {
			return err
		}
		if !ao.Feasible {
			return fmt.Errorf("expr: stacked: AO infeasible on %s", entry.name)
		}
		t.AddRowf(entry.name, lns.Throughput, exs.Throughput, ao.Throughput, ao.PeakC(entry.md), ao.M)
		rows = append(rows, row{lns.Throughput, exs.Throughput, ao.Throughput})
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	if rows[1].ao >= rows[0].ao {
		return fmt.Errorf("expr: stacked shape violated: stack (%.4f) should be thermally tighter than planar (%.4f)",
			rows[1].ao, rows[0].ao)
	}

	// Theorem 5 on the stack: the peak of an m-oscillating step-up
	// schedule still decreases monotonically in m.
	specs := make([]schedule.TwoModeSpec, 6)
	for i := range specs {
		specs[i] = schedule.TwoModeSpec{
			Low:       power.NewMode(0.6),
			High:      power.NewMode(1.3),
			HighRatio: 0.5,
		}
	}
	base, err := schedule.TwoMode(1.0, specs)
	if err != nil {
		return err
	}
	prev := 1e18
	msList := []int{1, 2, 4, 8, 16}
	if cfg.Quick {
		msList = []int{1, 4, 16}
	}
	for _, m := range msList {
		st, err := sim.NewStable(stack, base.Cycle(m))
		if err != nil {
			return err
		}
		peak, _ := st.PeakEndOfPeriod()
		if peak > prev+1e-9 {
			return fmt.Errorf("expr: stacked Theorem 5 violated at m=%d", m)
		}
		prev = peak
	}
	fmt.Fprintf(w, "Theorem 5 holds unchanged on the stacked model (structure-only proof): peak monotone in m over %v.\n", msList)
	fmt.Fprintf(w, "The stack pays for its shorter wires with a thermal throughput tax of %.1f%% under AO.\n\n",
		100*(1-rows[1].ao/rows[0].ao))
	return nil
}
