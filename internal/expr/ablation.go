package expr

import (
	"fmt"
	"io"

	"thermosc/internal/floorplan"
	"thermosc/internal/power"
	"thermosc/internal/report"
	"thermosc/internal/sim"
	"thermosc/internal/solver"
	"thermosc/internal/thermal"
)

// Ablation runs the design-choice studies DESIGN.md calls out:
//
//  1. Thermal-model variant: AO on the layered (die+spreader+sink) model
//     vs the single-layer core-level model — the algorithms only consume
//     the LTI structure, so both must yield feasible schedules with the
//     same qualitative ordering.
//  2. Fixed m vs searched m: how much throughput the m-search buys over
//     forcing m = 1 (no oscillation subdivision).
//  3. Overhead sensitivity: AO throughput and chosen m as the transition
//     stall τ grows from 0 to 1 ms.
func Ablation(w io.Writer, cfg Config) error {
	levels, err := power.PaperLevels(2)
	if err != nil {
		return err
	}
	const tmaxC = 60.0

	// --- 1. model variant ---
	mdLayered, err := platform(3, 1)
	if err != nil {
		return err
	}
	fp := floorplan.MustGrid(3, 1, 4e-3)
	mdCore, err := thermal.NewCoreLevelModel(fp, thermal.DefaultCoreLevel(), power.DefaultModel())
	if err != nil {
		return err
	}
	t1 := report.NewTable("Ablation 1: AO across thermal-model variants (3×1, 2 levels, Tmax = 60 °C)",
		"model", "nodes", "AO throughput", "peak [°C]", "m", "feasible")
	for _, entry := range []struct {
		name string
		md   *thermal.Model
	}{
		{"layered (die+spreader+sink)", mdLayered},
		{"core-level single layer", mdCore},
	} {
		p := problem(entry.md, levels, tmaxC)
		res, err := solver.AO(p)
		if err != nil {
			return err
		}
		if !res.Feasible {
			return fmt.Errorf("expr: ablation model %q infeasible", entry.name)
		}
		t1.AddRowf(entry.name, entry.md.NumNodes(), res.Throughput, res.PeakC(entry.md), res.M, res.Feasible)
	}
	if _, err := t1.WriteTo(w); err != nil {
		return err
	}

	// --- 2. fixed m vs searched m ---
	t2 := report.NewTable("Ablation 2: value of the m-search (3×1, 2 levels, Tmax = 60 °C)",
		"policy", "m", "throughput", "peak [°C]")
	p := problem(mdLayered, levels, tmaxC)
	pFixed := p
	pFixed.MaxM = 1
	fixed, err := solver.AO(pFixed)
	if err != nil {
		return err
	}
	searched, err := solver.AO(p)
	if err != nil {
		return err
	}
	t2.AddRowf("fixed m = 1", fixed.M, fixed.Throughput, fixed.PeakC(mdLayered))
	t2.AddRowf("searched m", searched.M, searched.Throughput, searched.PeakC(mdLayered))
	if _, err := t2.WriteTo(w); err != nil {
		return err
	}
	if searched.Throughput < fixed.Throughput-1e-9 {
		return fmt.Errorf("expr: ablation m-search lost throughput: %v vs %v", searched.Throughput, fixed.Throughput)
	}

	// --- 3. overhead sensitivity ---
	taus := []float64{0, 5e-6, 50e-6, 200e-6, 1e-3}
	if cfg.Quick {
		taus = []float64{0, 5e-6, 1e-3}
	}
	t3 := report.NewTable("Ablation 3: AO vs transition stall τ (3×1, 2 levels, Tmax = 60 °C)",
		"tau [µs]", "chosen m", "throughput", "peak [°C]")
	prev := -1.0
	_ = prev
	var thrs []float64
	for _, tau := range taus {
		pt := p
		pt.Overhead = power.TransitionOverhead{Tau: tau}
		pt.MaxM = 256
		res, err := solver.AO(pt)
		if err != nil {
			return err
		}
		if !res.Feasible {
			return fmt.Errorf("expr: ablation tau=%v infeasible", tau)
		}
		t3.AddRowf(tau*1e6, res.M, res.Throughput, res.PeakC(mdLayered))
		thrs = append(thrs, res.Throughput)
	}
	if _, err := t3.WriteTo(w); err != nil {
		return err
	}
	// Shape: zero overhead is at least as good as the heaviest overhead.
	if thrs[0] < thrs[len(thrs)-1]-1e-6 {
		return fmt.Errorf("expr: ablation overhead shape violated: %v", thrs)
	}

	// --- 4. the energy price of the extra throughput ---
	t4 := report.NewTable("Ablation 4: energy accounting at Tmax = 60 °C (3×1, 2 levels)",
		"policy", "throughput", "chip power [W]", "J per work unit")
	var epw []float64
	for _, run := range []struct {
		name string
		f    func(solver.Problem) (*solver.Result, error)
	}{
		{"EXS", solver.EXS},
		{"AO", solver.AO},
	} {
		res, err := run.f(p)
		if err != nil {
			return err
		}
		st, err := sim.NewStable(mdLayered, res.Schedule)
		if err != nil {
			return err
		}
		e := st.Energy()
		t4.AddRowf(run.name, res.Throughput, e.TotalJ()/res.Schedule.Period(), e.EnergyPerWork())
		epw = append(epw, e.EnergyPerWork())
	}
	if _, err := t4.WriteTo(w); err != nil {
		return err
	}
	// The cubic power law makes the extra throughput cost more joules per
	// unit of work — oscillation buys performance, not efficiency.
	if epw[1] < epw[0] {
		return fmt.Errorf("expr: ablation energy shape violated: %v", epw)
	}

	// --- 5. heterogeneous cores ---
	fpH := floorplan.MustGrid(3, 1, 4e-3)
	mdHet, err := thermal.NewHeteroModel(fpH, thermal.HotSpot65nm(), power.DefaultModel(),
		[]float64{1.5, 1.0, 0.8})
	if err != nil {
		return err
	}
	volts, err := solver.IdealVoltages(mdHet, mdHet.Rise(tmaxC), levels.Max())
	if err != nil {
		return err
	}
	pH := problem(mdHet, levels, tmaxC)
	aoHet, err := solver.AO(pH)
	if err != nil {
		return err
	}
	if !aoHet.Feasible {
		return fmt.Errorf("expr: ablation hetero AO infeasible")
	}
	t5 := report.NewTable("Ablation 5: heterogeneous platform (power scales 1.5/1.0/0.8, Tmax = 60 °C)",
		"core", "power scale", "ideal voltage [V]", "AO mean speed")
	for i := 0; i < 3; i++ {
		t5.AddRowf(i, []float64{1.5, 1.0, 0.8}[i], volts[i],
			aoHet.Schedule.CoreWork(i)/aoHet.Schedule.Period())
	}
	if _, err := t5.WriteTo(w); err != nil {
		return err
	}
	if !(volts[0] < volts[1] && volts[1] < volts[2]) {
		return fmt.Errorf("expr: ablation hetero shape violated: ideal voltages %v not ordered by efficiency", volts)
	}
	fmt.Fprintf(w, "Work migrates toward the efficient core: the scheduler exploits heterogeneity without any code change — the algorithms only consume the LTI model.\n\n")
	return nil
}
