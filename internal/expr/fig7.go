package expr

import (
	"fmt"
	"io"

	"thermosc/internal/power"
	"thermosc/internal/report"
	"thermosc/internal/solver"
)

// Fig7 reproduces §VI-C's threshold sweep: throughput of LNS, EXS, AO and
// PCO with 2 voltage levels as Tmax ranges over {50, 55, 60, 65} °C.
// Shapes verified: throughput grows with Tmax for every approach; AO/PCO
// dominate; and once the threshold is generous enough for a platform to
// run flat-out (the paper's 2-core case above 55 °C), all approaches
// converge to the maximum speed.
func Fig7(w io.Writer, cfg Config) error {
	configs := paperConfigs
	tmaxes := []float64{50, 55, 60, 65}
	if cfg.Quick {
		configs = configs[:2]
		tmaxes = []float64{55, 65}
	}
	levels, err := power.PaperLevels(2)
	if err != nil {
		return err
	}

	t := report.NewTable("Fig. 7: throughput by platform and Tmax (2 voltage levels)",
		"platform", "Tmax [°C]", "LNS", "EXS", "AO", "PCO")
	for _, cc := range configs {
		md, err := platform(cc.Rows, cc.Cols)
		if err != nil {
			return err
		}
		prevAO := -1.0
		for _, tmax := range tmaxes {
			p := problem(md, levels, tmax)
			lns, err := solver.LNS(p)
			if err != nil {
				return err
			}
			exs, err := solver.EXS(p)
			if err != nil {
				return err
			}
			ao, err := solver.AO(p)
			if err != nil {
				return err
			}
			pco, err := solver.PCO(p)
			if err != nil {
				return err
			}
			t.AddRowf(cc.Name, tmax, lns.Throughput, exs.Throughput, ao.Throughput, pco.Throughput)

			if !ao.Feasible || !pco.Feasible {
				return fmt.Errorf("expr: fig7 %s Tmax=%v: AO/PCO infeasible", cc.Name, tmax)
			}
			if ao.Throughput < exs.Throughput-1e-6 || pco.Throughput < ao.Throughput-1e-6 {
				return fmt.Errorf("expr: fig7 %s Tmax=%v: dominance violated", cc.Name, tmax)
			}
			if ao.Throughput < prevAO-1e-6 {
				return fmt.Errorf("expr: fig7 %s: AO throughput fell as Tmax rose", cc.Name)
			}
			prevAO = ao.Throughput
		}
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "Paper's saturation point: the 2-core platform converges to the top speed once Tmax is generous enough; larger platforms remain constrained longer.")
	fmt.Fprintln(w)
	return nil
}
