package expr

import (
	"fmt"
	"io"

	"thermosc/internal/actuator"
	"thermosc/internal/power"
	"thermosc/internal/report"
	"thermosc/internal/solver"
)

// Actuation validates the §V transition-overhead accounting end to end:
// AO's plan is compiled to a DVFS command stream and executed with every
// voltage change stalling the core for τ. The executed useful throughput
// must cover the plan's claim (AO budgeted the stalls by extending high
// intervals), while a plan produced WITHOUT the overhead budget loses
// work to the same stalls — and the executed peak stays under Tmax in
// both the stable status and a cold start.
func Actuation(w io.Writer, cfg Config) error {
	md, err := platform(3, 1)
	if err != nil {
		return err
	}
	levels, err := power.PaperLevels(2)
	if err != nil {
		return err
	}
	const tmaxC = 65.0
	taus := []float64{5e-6, 50e-6, 200e-6}
	if cfg.Quick {
		taus = []float64{5e-6, 200e-6}
	}

	t := report.NewTable("Planned vs executed throughput under DVFS stalls (3×1, 2 levels, Tmax = 65 °C)",
		"tau [µs]", "plan", "claimed", "executed", "stalls/period", "executed peak [°C]")
	for _, tau := range taus {
		o := power.TransitionOverhead{Tau: tau}
		p := problem(md, levels, tmaxC)
		p.Overhead = o

		budgeted, err := solver.AO(p)
		if err != nil {
			return err
		}
		repB, err := actuator.Execute(md, budgeted.Schedule, o)
		if err != nil {
			return err
		}
		execB := repB.ExecutedThroughput(md.NumCores(), budgeted.Schedule.Period())

		pFree := p
		pFree.Overhead = power.TransitionOverhead{}
		// Without an overhead model nothing caps m; leave the paper's
		// M-bound behaviour out of the comparison by fixing a moderate m
		// (an uncapped plan oscillates so fast the stalls consume every
		// segment — executed work collapses to zero).
		pFree.MaxM = 16
		unbudgeted, err := solver.AO(pFree)
		if err != nil {
			return err
		}
		repU, err := actuator.Execute(md, unbudgeted.Schedule, o)
		if err != nil {
			return err
		}
		execU := repU.ExecutedThroughput(md.NumCores(), unbudgeted.Schedule.Period())

		t.AddRowf(tau*1e6, "AO (overhead budgeted)", budgeted.Throughput, execB, repB.Transitions, repB.PeakC)
		t.AddRowf(tau*1e6, "AO (overhead ignored)", unbudgeted.Throughput, execU, repU.Transitions, repU.PeakC)

		if execB < budgeted.Throughput-1e-6 {
			return fmt.Errorf("expr: actuation: budgeted plan under-delivered at tau=%v: %v < %v",
				tau, execB, budgeted.Throughput)
		}
		if execU >= unbudgeted.Throughput-1e-9 {
			return fmt.Errorf("expr: actuation: unbudgeted plan should lose work at tau=%v", tau)
		}
		if repB.PeakC > tmaxC+0.1 {
			return fmt.Errorf("expr: actuation: executed peak %.3f violates the cap at tau=%v", repB.PeakC, tau)
		}
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "The budgeted plan delivers at least its claim under real stalls (the paper's per-transition loss model is conservative); ignoring overhead at plan time forfeits the difference at run time.\n\n")
	return nil
}
