package expr

import (
	"fmt"
	"io"

	"thermosc/internal/power"
	"thermosc/internal/report"
	"thermosc/internal/solver"
)

// Fig6 reproduces §VI-C: chip-wide throughput of LNS, EXS, AO and PCO on
// {2, 3, 6, 9}-core platforms with {2, 3, 4, 5} voltage levels (Table IV)
// at Tmax = 55 °C with τ = 5 µs. The paper's shape: AO and PCO always win,
// the margin over EXS/LNS shrinks as the number of levels grows, and AO ≈
// PCO.
func Fig6(w io.Writer, cfg Config) error {
	configs := paperConfigs
	levelCounts := []int{2, 3, 4, 5}
	if cfg.Quick {
		configs = configs[:2]
		levelCounts = []int{2, 3}
	}
	const tmaxC = 55.0

	t := report.NewTable("Fig. 6: throughput by platform, voltage levels, and approach (Tmax = 55 °C)",
		"platform", "levels", "LNS", "EXS", "AO", "PCO", "AO/EXS")
	type cell struct{ lns, exs, ao, pco float64 }
	var improveSum2, improveSum5 float64
	var count2, count5 int
	for _, cc := range configs {
		md, err := platform(cc.Rows, cc.Cols)
		if err != nil {
			return err
		}
		for _, nl := range levelCounts {
			levels, err := power.PaperLevels(nl)
			if err != nil {
				return err
			}
			p := problem(md, levels, tmaxC)
			var c cell
			lns, err := solver.LNS(p)
			if err != nil {
				return err
			}
			c.lns = lns.Throughput
			exs, err := solver.EXS(p)
			if err != nil {
				return err
			}
			c.exs = exs.Throughput
			ao, err := solver.AO(p)
			if err != nil {
				return err
			}
			if !ao.Feasible {
				return fmt.Errorf("expr: fig6 %s/%d levels: AO infeasible", cc.Name, nl)
			}
			c.ao = ao.Throughput
			pco, err := solver.PCO(p)
			if err != nil {
				return err
			}
			if !pco.Feasible {
				return fmt.Errorf("expr: fig6 %s/%d levels: PCO infeasible", cc.Name, nl)
			}
			c.pco = pco.Throughput

			ratio := 0.0
			if c.exs > 0 {
				ratio = c.ao / c.exs
			}
			t.AddRowf(cc.Name, nl, c.lns, c.exs, c.ao, c.pco, ratio)

			// Shape checks: AO and PCO dominate the constant-mode baselines.
			if c.ao < c.exs-1e-6 || c.ao < c.lns-1e-6 {
				return fmt.Errorf("expr: fig6 %s/%d levels: AO %v below baseline (EXS %v, LNS %v)",
					cc.Name, nl, c.ao, c.exs, c.lns)
			}
			if c.pco < c.ao-1e-6 {
				return fmt.Errorf("expr: fig6 %s/%d levels: PCO %v below AO %v", cc.Name, nl, c.pco, c.ao)
			}
			if c.exs > 0 {
				if nl == 2 {
					improveSum2 += c.ao/c.exs - 1
					count2++
				}
				if nl == levelCounts[len(levelCounts)-1] {
					improveSum5 += c.ao/c.exs - 1
					count5++
				}
			}
		}
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	if count2 > 0 && count5 > 0 {
		fmt.Fprintf(w, "Average AO improvement over EXS: %.1f%% at 2 levels vs %.1f%% at %d levels (paper: 55.2%% vs 24.8%% — fewer levels, bigger win).\n\n",
			100*improveSum2/float64(count2), 100*improveSum5/float64(count5), levelCounts[len(levelCounts)-1])
	}
	return nil
}
