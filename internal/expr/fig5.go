package expr

import (
	"fmt"
	"io"
	"math/rand"

	"thermosc/internal/report"
	"thermosc/internal/sim"
)

// Fig5 reproduces §VI-B: a random step-up schedule on the 9-core platform
// (period 9.836 s, up to 5 intervals per core); the stable-status peak
// temperature of the m-Oscillating schedule decreases monotonically as m
// grows (Theorem 5).
func Fig5(w io.Writer, cfg Config) error {
	md, err := platform(3, 3)
	if err != nil {
		return err
	}
	r := rand.New(rand.NewSource(cfg.Seed + 5))
	s := randomStepUp(r, md.Floorplan(), 9.836, 5)

	ms := []int{1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24, 32, 48, 64}
	if cfg.Quick {
		ms = []int{1, 2, 4, 8, 16, 32}
	}

	t := report.NewTable("Fig. 5: 9-core m-Oscillating peak temperature vs m (Theorem 5: monotone decrease)",
		"m", "peak [°C]", "Δ vs m=1 [K]")
	var first, prev float64
	for idx, m := range ms {
		cyc := s.Cycle(m)
		st, err := sim.NewStable(md, cyc)
		if err != nil {
			return err
		}
		peak, _ := st.PeakEndOfPeriod()
		if idx == 0 {
			first = peak
		} else if peak > prev+1e-9 {
			return fmt.Errorf("expr: fig5 Theorem 5 violated: peak rose from %.6f to %.6f at m=%d", prev, peak, m)
		}
		t.AddRowf(m, md.Absolute(peak), peak-first)
		prev = peak
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "Total reduction m=1 → m=%d: %.3f K.\n\n", ms[len(ms)-1], first-prev)
	return nil
}
