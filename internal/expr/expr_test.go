package expr

import (
	"bytes"
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Quick: true, Seed: 1} }

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 17 {
		t.Fatalf("registry has %d entries: %v", len(names), names)
	}
	for _, n := range names {
		if Describe(n) == "" {
			t.Fatalf("experiment %q has no description", n)
		}
	}
	if Describe("nope") != "" {
		t.Fatal("unknown experiment should have empty description")
	}
	var buf bytes.Buffer
	if err := Run("nope", &buf, quickCfg()); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func runExperiment(t *testing.T, name string, wants ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Run(name, &buf, quickCfg()); err != nil {
		t.Fatalf("%s: %v\noutput so far:\n%s", name, err, buf.String())
	}
	out := buf.String()
	for _, w := range wants {
		if !strings.Contains(out, w) {
			t.Fatalf("%s output missing %q:\n%s", name, w, out)
		}
	}
	return out
}

func TestMotivation(t *testing.T) {
	out := runExperiment(t, "motivation",
		"Ideal continuous voltages", "Table II", "Table III", "improvement over LNS")
	if !strings.Contains(out, "above") {
		t.Fatalf("Table II ratios should overheat at 20 ms:\n%s", out)
	}
}

func TestFig2(t *testing.T) {
	runExperiment(t, "fig2", "Fig. 2", "both cores", "Stable-status trace")
}

func TestFig3(t *testing.T) {
	runExperiment(t, "fig3", "Fig. 3", "step-up bound", "maximum over sweep")
}

func TestFig4(t *testing.T) {
	runExperiment(t, "fig4", "Fig. 4", "Theorem 1", "Heat-up from ambient")
}

func TestFig5(t *testing.T) {
	runExperiment(t, "fig5", "Fig. 5", "Total reduction")
}

func TestFig6(t *testing.T) {
	runExperiment(t, "fig6", "Fig. 6", "2 cores", "3 cores", "Average AO improvement")
}

func TestFig7(t *testing.T) {
	runExperiment(t, "fig7", "Fig. 7", "saturation")
}

func TestTableV(t *testing.T) {
	runExperiment(t, "tablev", "Table V", "EXS-naive")
}

func TestAblation(t *testing.T) {
	runExperiment(t, "ablation", "Ablation 1", "Ablation 2", "Ablation 3")
}

func TestReactive(t *testing.T) {
	runExperiment(t, "reactive", "Reactive governors", "AO (proactive, guaranteed)", "guard band")
}

func TestReliabilityExperiment(t *testing.T) {
	runExperiment(t, "reliability", "Thermal cycling", "Knee at m =", "fatigue rate")
}

func TestStackedExperiment(t *testing.T) {
	runExperiment(t, "stacked", "stacked 3×1×2", "Theorem 5 holds", "throughput tax")
}

func TestAdmissionExperiment(t *testing.T) {
	runExperiment(t, "admission", "Admission ratio", "admission capacity")
}

func TestRobustnessExperiment(t *testing.T) {
	runExperiment(t, "robustness", "perturbed models", "all-adverse corner", "guard band")
}

func TestScalingExperiment(t *testing.T) {
	runExperiment(t, "scaling", "AO scaling", "4x4", "stays interactive")
}

func TestTDPExperiment(t *testing.T) {
	runExperiment(t, "tdp", "TDP capping", "thermal-capped AO", "headroom")
}

func TestActuationExperiment(t *testing.T) {
	runExperiment(t, "actuation", "Planned vs executed", "overhead budgeted", "forfeits")
}

func TestAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	var buf bytes.Buffer
	if err := All(&buf, quickCfg()); err != nil {
		t.Fatalf("All: %v\n%s", err, buf.String())
	}
	for _, name := range Names() {
		if !strings.Contains(buf.String(), "==== "+name) {
			t.Fatalf("All output missing section %q", name)
		}
	}
}

func TestAllParallelMatchesSequentialSections(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	var buf bytes.Buffer
	if err := AllParallel(&buf, quickCfg()); err != nil {
		t.Fatalf("AllParallel: %v\n%s", err, buf.String())
	}
	out := buf.String()
	// Sections appear in registry order despite concurrent execution.
	prev := -1
	for _, name := range Names() {
		idx := strings.Index(out, "==== "+name)
		if idx < 0 {
			t.Fatalf("missing section %q", name)
		}
		if idx < prev {
			t.Fatalf("section %q out of order", name)
		}
		prev = idx
	}
}
