package expr

import (
	"fmt"
	"io"

	"thermosc/internal/mat"
	"thermosc/internal/power"
	"thermosc/internal/report"
	"thermosc/internal/schedule"
	"thermosc/internal/sim"
	"thermosc/internal/solver"
)

// Motivation reproduces §III: the 3×1 platform at Tmax = 65 °C with two
// modes {0.6 V, 1.3 V}. It reports the ideal continuous voltages, the LNS
// and EXS baselines, the same-throughput two-mode ratios (Table II), the
// peak temperature those ratios reach when run periodically, and the
// adjusted ratios plus performance for t_p ∈ {20, 10, 5} ms (Table III).
func Motivation(w io.Writer, cfg Config) error {
	md, err := platform(3, 1)
	if err != nil {
		return err
	}
	levels := power.MustLevelSet(0.6, 1.3)
	const tmaxC = 65.0
	tmaxRise := md.Rise(tmaxC)

	volts, err := solver.IdealVoltages(md, tmaxRise, levels.Max())
	if err != nil {
		return err
	}
	ideal := report.NewTable("Ideal continuous voltages (paper: [1.2085 1.1748 1.2085] V, perf 1.1972)",
		"core1 [V]", "core2 [V]", "core3 [V]", "performance")
	ideal.AddRowf(volts[0], volts[1], volts[2], mat.VecSum(volts)/3)
	if _, err := ideal.WriteTo(w); err != nil {
		return err
	}

	p := problem(md, levels, tmaxC)
	lns, err := solver.LNS(p)
	if err != nil {
		return err
	}
	exs, err := solver.EXS(p)
	if err != nil {
		return err
	}
	base := report.NewTable("Single-mode baselines (paper: LNS 0.6, EXS 0.83 with [0.6 0.6 1.3] V)",
		"method", "modes", "performance", "peak [°C]", "feasible")
	base.AddRowf("LNS", fmt.Sprint(modesString(lns.Schedule)), lns.Throughput, lns.PeakC(md), lns.Feasible)
	base.AddRowf("EXS", fmt.Sprint(modesString(exs.Schedule)), exs.Throughput, exs.PeakC(md), exs.Feasible)
	if _, err := base.WriteTo(w); err != nil {
		return err
	}

	// Table II: same-throughput two-mode split of the ideal voltages.
	rh := make([]float64, 3)
	for i, v := range volts {
		rh[i] = (v - 0.6) / (1.3 - 0.6)
	}
	t2 := report.NewTable("Table II: execution-time ratios preserving the ideal throughput (paper: 0.8693 0.8211 0.8693)",
		"", "core1", "core2", "core3")
	t2.AddRowf("ratio(vH)", rh[0], rh[1], rh[2])
	t2.AddRowf("ratio(vL)", 1-rh[0], 1-rh[1], 1-rh[2])
	if _, err := t2.WriteTo(w); err != nil {
		return err
	}

	// Peak when running the Table II ratios periodically at 20 ms
	// (paper: 79.69 °C — above the 65 °C threshold).
	sched2, err := schedule.TwoMode(20e-3, twoModeSpecs(rh))
	if err != nil {
		return err
	}
	stable, err := sim.NewStable(md, sched2)
	if err != nil {
		return err
	}
	peak, _ := stable.PeakEndOfPeriod()
	fmt.Fprintf(w, "Running the Table II ratios periodically (t_p = 20 ms) peaks at %.2f °C — %s the %.0f °C threshold (paper: 79.69 °C, above).\n\n",
		md.Absolute(peak), aboveBelow(md.Absolute(peak), tmaxC), tmaxC)

	// Table III: adjusted ratios meeting Tmax for t_p ∈ {20, 10, 5} ms.
	periods := []float64{20e-3, 10e-3, 5e-3}
	t3 := report.NewTable("Table III: adjusted ratio(vH) under Tmax for different periods (paper perf: 0.8725, 0.8991, 0.9182)",
		"", "t_p=20ms", "t_p=10ms", "t_p=5ms")
	ratios := make([][]float64, len(periods))
	perfs := make([]float64, len(periods))
	for k, tp := range periods {
		pk := p
		pk.BasePeriod = tp
		pk.MaxM = 1                              // fixed period: no m-search
		pk.Overhead = power.TransitionOverhead{} // §III ignores overhead
		res, err := solver.AO(pk)
		if err != nil {
			return err
		}
		ratios[k] = highRatios(res.Schedule)
		perfs[k] = res.Throughput
		if !res.Feasible {
			return fmt.Errorf("expr: motivation t_p=%v infeasible (peak %.2f °C)", tp, res.PeakC(md))
		}
	}
	for core := 0; core < 3; core++ {
		t3.AddRowf(fmt.Sprintf("core%d", core+1), ratios[0][core], ratios[1][core], ratios[2][core])
	}
	t3.AddRowf("Performance", perfs[0], perfs[1], perfs[2])
	if _, err := t3.WriteTo(w); err != nil {
		return err
	}

	// The paper's observation: shorter periods leave more throughput on
	// the table unclaimed — performance rises monotonically.
	for k := 1; k < len(perfs); k++ {
		if perfs[k] < perfs[k-1]-1e-9 {
			return fmt.Errorf("expr: performance not improving with shorter period: %v", perfs)
		}
	}
	imp := (perfs[0]/lns.Throughput - 1) * 100
	fmt.Fprintf(w, "AO improvement over LNS at t_p = 20 ms: %.2f%% (paper: 45.42%%).\n\n", imp)
	return nil
}

func twoModeSpecs(rh []float64) []schedule.TwoModeSpec {
	specs := make([]schedule.TwoModeSpec, len(rh))
	for i, r := range rh {
		specs[i] = schedule.TwoModeSpec{
			Low:       power.NewMode(0.6),
			High:      power.NewMode(1.3),
			HighRatio: r,
		}
	}
	return specs
}

// highRatios extracts each core's high-mode time fraction from a two-mode
// cycle schedule.
func highRatios(s *schedule.Schedule) []float64 {
	out := make([]float64, s.NumCores())
	for i := range out {
		var hi float64
		segs := s.CoreSegments(i)
		maxV := 0.0
		for _, seg := range segs {
			if seg.Mode.Voltage > maxV {
				maxV = seg.Mode.Voltage
			}
		}
		for _, seg := range segs {
			if seg.Mode.Voltage == maxV && len(segs) > 1 {
				hi += seg.Length
			}
		}
		out[i] = hi / s.Period()
	}
	return out
}

func modesString(s *schedule.Schedule) string {
	if s == nil {
		return "-"
	}
	out := "["
	for i := 0; i < s.NumCores(); i++ {
		if i > 0 {
			out += " "
		}
		out += s.ModeAt(i, 0).String()
	}
	return out + "]"
}

func aboveBelow(v, threshold float64) string {
	if v > threshold {
		return "above"
	}
	return "below"
}
