package expr

import (
	"fmt"
	"io"
	"math"

	"thermosc/internal/mat"
	"thermosc/internal/power"
	"thermosc/internal/report"
	"thermosc/internal/schedule"
	"thermosc/internal/sim"
	"thermosc/internal/solver"
)

// TDP quantifies the claim the paper adopts from Pagani et al. [9]:
// constraining the chip by a traditional Thermal Design Power is
// pessimistic next to constraining temperature directly. We derive the
// TDP of the 3×1 platform the classical way — the largest uniform
// per-core power for which the WORST-CASE placement stays below Tmax —
// then compare the best power-capped constant assignment against
// thermally-capped EXS and AO at the same Tmax.
func TDP(w io.Writer, cfg Config) error {
	md, err := platform(3, 1)
	if err != nil {
		return err
	}
	levels, err := power.PaperLevels(5)
	if err != nil {
		return err
	}
	const tmaxC = 65.0
	tmaxRise := md.Rise(tmaxC)
	pm := md.Power()
	n := md.NumCores()

	// Classical TDP: all cores at equal power p, hottest core at Tmax.
	// Steady temps are linear in the uniform power, so one unit solve
	// scales. Leakage feedback: T = H·(p·1 + β·T_core ...) — solve by
	// fixed point on the uniform power level.
	uniformPeak := func(pWatts float64) float64 {
		// ψ includes only the static part; leakage is inside the model's
		// β-folded dynamics. Invert: what voltage draws pWatts static?
		v, err := pm.VoltageForStatic(pWatts)
		if err != nil {
			return math.Inf(1)
		}
		modes := make([]power.Mode, n)
		for i := range modes {
			modes[i] = power.NewMode(v)
		}
		peak, _ := mat.VecMax(md.SteadyStateCores(modes))
		return peak
	}
	lo, hi := pm.Alpha+1e-3, 60.0
	for k := 0; k < 60; k++ {
		mid := 0.5 * (lo + hi)
		if uniformPeak(mid) <= tmaxRise {
			lo = mid
		} else {
			hi = mid
		}
	}
	tdpPerCore := lo
	vTDP, err := pm.VoltageForStatic(tdpPerCore)
	if err != nil {
		return err
	}

	// Power-capped policy: each core at the fastest level whose static
	// power fits the per-core TDP.
	var vCap float64
	for _, v := range levels.Voltages() {
		if pm.Static(power.NewMode(v)) <= tdpPerCore+1e-12 {
			vCap = v
		}
	}
	if vCap == 0 {
		return fmt.Errorf("expr: tdp: no level fits the %.2f W budget", tdpPerCore)
	}
	modes := make([]power.Mode, n)
	for i := range modes {
		modes[i] = power.NewMode(vCap)
	}
	tdpSched := schedule.Constant(20e-3, modes)
	stTDP, err := sim.NewStable(md, tdpSched)
	if err != nil {
		return err
	}
	tdpPeak, _ := stTDP.PeakEndOfPeriod()
	tdpThroughput := vCap

	p := problem(md, levels, tmaxC)
	exs, err := solver.EXS(p)
	if err != nil {
		return err
	}
	ao, err := solver.AO(p)
	if err != nil {
		return err
	}

	t := report.NewTable(fmt.Sprintf("TDP capping vs direct thermal capping (3×1, 5 levels, Tmax = 65 °C; TDP = %.2f W/core ⇒ v ≤ %.3g V)", tdpPerCore, vTDP),
		"policy", "throughput", "peak [°C]", "headroom wasted [K]")
	t.AddRowf("TDP-capped uniform", tdpThroughput, md.Absolute(tdpPeak), tmaxRise-tdpPeak)
	t.AddRowf("thermal-capped EXS", exs.Throughput, exs.PeakC(md), tmaxC-exs.PeakC(md))
	t.AddRowf("thermal-capped AO", ao.Throughput, ao.PeakC(md), tmaxC-ao.PeakC(md))
	if _, err := t.WriteTo(w); err != nil {
		return err
	}

	if exs.Throughput < tdpThroughput-1e-9 || ao.Throughput <= tdpThroughput {
		return fmt.Errorf("expr: tdp shape violated: TDP %.4f vs EXS %.4f vs AO %.4f",
			tdpThroughput, exs.Throughput, ao.Throughput)
	}
	fmt.Fprintf(w, "TDP is provisioned for the worst-case placement, so a uniform power cap strands thermal headroom (%.1f K here); constraining temperature directly recovers it — AO gains %.1f%% over the TDP policy (the paper's ref. [9] argument).\n\n",
		tmaxRise-tdpPeak, 100*(ao.Throughput/tdpThroughput-1))
	return nil
}
