package expr

import (
	"fmt"
	"io"

	"thermosc/internal/power"
	"thermosc/internal/report"
	"thermosc/internal/schedule"
	"thermosc/internal/sim"
)

// Fig2 reproduces the §IV-C counterexample: on a 2-core platform with a
// 100 ms period (each core alternating 1.3 V and 0.6 V in anti-phase),
// doubling the oscillation frequency of ONE core raises the stable-status
// peak temperature, while doubling BOTH cores lowers it (Theorem 5).
func Fig2(w io.Writer, cfg Config) error {
	md, err := platform(2, 1)
	if err != nil {
		return err
	}
	hi, lo := power.NewMode(1.3), power.NewMode(0.6)
	seg := func(l float64, m power.Mode) schedule.Segment {
		return schedule.Segment{Length: l, Mode: m}
	}

	base := schedule.Must([][]schedule.Segment{
		{seg(50e-3, hi), seg(50e-3, lo)},
		{seg(50e-3, lo), seg(50e-3, hi)},
	})
	oneCore := schedule.Must([][]schedule.Segment{
		{seg(25e-3, hi), seg(25e-3, lo), seg(25e-3, hi), seg(25e-3, lo)},
		{seg(50e-3, lo), seg(50e-3, hi)},
	})
	bothCores := base.Cycle(2)

	samples := 96
	if cfg.Quick {
		samples = 32
	}
	peakOf := func(s *schedule.Schedule) (float64, error) {
		st, err := sim.NewStable(md, s)
		if err != nil {
			return 0, err
		}
		p, _, _ := st.PeakDense(samples)
		return md.Absolute(p), nil
	}

	basePeak, err := peakOf(base)
	if err != nil {
		return err
	}
	onePeak, err := peakOf(oneCore)
	if err != nil {
		return err
	}
	bothPeak, err := peakOf(bothCores)
	if err != nil {
		return err
	}

	t := report.NewTable("Fig. 2: oscillating one core vs all cores (paper: 53.3 °C base → 54.6 °C one-core)",
		"schedule", "peak [°C]", "vs base")
	t.AddRowf("base (Fig. 2a)", basePeak, "-")
	t.AddRowf("core1 ×2 only (Fig. 2c)", onePeak, delta(onePeak, basePeak))
	t.AddRowf("both cores ×2 (Theorem 5)", bothPeak, delta(bothPeak, basePeak))
	if _, err := t.WriteTo(w); err != nil {
		return err
	}

	if onePeak <= basePeak {
		return fmt.Errorf("expr: fig2 shape violated: one-core oscillation did not raise the peak (%.3f vs %.3f)", onePeak, basePeak)
	}
	if bothPeak > basePeak+1e-9 {
		return fmt.Errorf("expr: fig2 shape violated: joint oscillation raised the peak (%.3f vs %.3f)", bothPeak, basePeak)
	}

	// Stable-status temperature trace over one period (Fig. 2b analogue).
	st, err := sim.NewStable(md, base)
	if err != nil {
		return err
	}
	n := 64
	x := make([]float64, n+1)
	c0 := make([]float64, n+1)
	c1 := make([]float64, n+1)
	for k := 0; k <= n; k++ {
		tt := base.Period() * float64(k) / float64(n)
		state := st.At(tt)
		x[k] = tt * 1e3
		c0[k] = md.Absolute(state[0])
		c1[k] = md.Absolute(state[1])
	}
	fmt.Fprint(w, report.ASCIIPlot("Stable-status trace, base schedule (0=core1, 1=core2; x in ms)", x, [][]float64{c0, c1}, 64, 10))
	fmt.Fprintln(w)
	return nil
}

func delta(v, base float64) string {
	return fmt.Sprintf("%+.3f", v-base)
}
