package expr

import (
	"fmt"
	"io"
	"time"

	"thermosc/internal/power"
	"thermosc/internal/report"
	"thermosc/internal/solver"
)

// TableV reproduces the computation-time comparison of §VI-D: wall-clock
// time and evaluation counts of AO, PCO, EXS (branch-and-bound) and the
// faithful EXS-naive (Algorithm 1) across {2,3,6,9} cores × {2..5} levels
// at Tmax = 65 °C.
//
// Absolute seconds are machine- and implementation-dependent (the authors
// ran MATLAB; this is compiled Go) — the reproduced claims are the
// *scaling shapes*: EXS-naive grows as levels^N, AO's cost is dominated by
// the m-search and the TPT adjustment and stays polynomial, and PCO costs
// a constant factor more than AO.
func TableV(w io.Writer, cfg Config) error {
	configs := paperConfigs
	levelCounts := []int{2, 3, 4, 5}
	if cfg.Quick {
		configs = configs[:2]
		levelCounts = []int{2, 3}
	}
	const tmaxC = 65.0

	t := report.NewTable("Table V: computation cost (time; steady/peak evaluations in parentheses)",
		"platform", "levels", "AO", "PCO", "EXS (pruned)", "EXS-naive (Alg. 1)")
	type timing struct {
		d time.Duration
		e int64
	}
	fmtT := func(x timing) string {
		return fmt.Sprintf("%.3fs (%d)", x.d.Seconds(), x.e)
	}
	var lastNaive int64
	for _, cc := range configs {
		md, err := platform(cc.Rows, cc.Cols)
		if err != nil {
			return err
		}
		var naivePerLevel []int64
		for _, nl := range levelCounts {
			levels, err := power.PaperLevels(nl)
			if err != nil {
				return err
			}
			p := problem(md, levels, tmaxC)
			// Algorithm 1 as written enumerates f_lowest..f_highest with
			// no inactive mode; match it for the eval-count shape check.
			p.DisallowOff = true
			ao, err := solver.AO(p)
			if err != nil {
				return err
			}
			pco, err := solver.PCO(p)
			if err != nil {
				return err
			}
			exs, err := solver.EXS(p)
			if err != nil {
				return err
			}
			naive, err := solver.EXSNaive(p)
			if err != nil {
				return err
			}
			t.AddRow(cc.Name, fmt.Sprint(nl),
				fmtT(timing{ao.Elapsed, ao.Evals}),
				fmtT(timing{pco.Elapsed, pco.Evals}),
				fmtT(timing{exs.Elapsed, exs.Evals}),
				fmtT(timing{naive.Elapsed, naive.Evals}))
			naivePerLevel = append(naivePerLevel, naive.Evals)
			lastNaive = naive.Evals

			// Shape: Algorithm 1 enumerates exactly levels^N states.
			want := int64(1)
			for k := 0; k < md.NumCores(); k++ {
				want *= int64(nl)
			}
			if naive.Evals != want {
				return fmt.Errorf("expr: tablev %s/%d levels: naive evals %d != %d", cc.Name, nl, naive.Evals, want)
			}
		}
		// Shape: naive cost strictly grows with the level count.
		for k := 1; k < len(naivePerLevel); k++ {
			if naivePerLevel[k] <= naivePerLevel[k-1] {
				return fmt.Errorf("expr: tablev %s: naive evals not growing with levels", cc.Name)
			}
		}
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "Largest Algorithm 1 enumeration: %d assignments (paper's MATLAB run exceeded 2 hours at 9 cores × 5 levels; compiled Go absorbs the same exponential count far faster — the exponent, not the constant, is the reproduced claim).\n\n", lastNaive)
	return nil
}
