package expr

import (
	"fmt"
	"io"
	"math/rand"

	"thermosc/internal/power"
	"thermosc/internal/report"
	"thermosc/internal/rt"
	"thermosc/internal/solver"
)

// Admission runs the classic schedulability-style study over random
// periodic task sets (UUniFast utilizations, log-uniform periods): for
// each total-utilization level, what fraction of task sets can each
// thermally-constrained policy guarantee on the 3×1 platform at 65 °C?
// The thermal throughput gap between the policies translates directly
// into admission capacity — the real-time payoff of the paper's method.
func Admission(w io.Writer, cfg Config) error {
	md, err := platform(3, 1)
	if err != nil {
		return err
	}
	levels, err := power.PaperLevels(2)
	if err != nil {
		return err
	}
	const tmaxC = 65.0
	p := problem(md, levels, tmaxC)

	// Sustained per-core speeds for each policy (task-set independent).
	type policy struct {
		name   string
		speeds []float64
		cycle  float64
	}
	var policies []policy
	for _, run := range []struct {
		name string
		f    func(solver.Problem) (*solver.Result, error)
	}{
		{"LNS", solver.LNS},
		{"EXS", solver.EXS},
		{"AO", solver.AO},
	} {
		res, err := run.f(p)
		if err != nil {
			return err
		}
		if !res.Feasible || res.Schedule == nil {
			return fmt.Errorf("expr: admission: %s infeasible", run.name)
		}
		speeds := make([]float64, md.NumCores())
		var mean float64
		oscillates := false
		for c := range speeds {
			speeds[c] = res.Schedule.CoreWork(c) / res.Schedule.Period()
			mean += speeds[c]
			if len(res.Schedule.CoreSegments(c)) > 1 {
				oscillates = true
			}
		}
		mean /= float64(len(speeds))
		if mean > 0 && res.Throughput < mean {
			// Strip the overhead padding: scale to useful throughput.
			f := res.Throughput / mean
			for c := range speeds {
				speeds[c] *= f
			}
		}
		cycle := 0.0 // constant schedules pose no fluid-approximation issue
		if oscillates {
			cycle = res.Schedule.Period()
		}
		policies = append(policies, policy{run.name, speeds, cycle})
	}

	sets := 200
	utils := []float64{1.2, 1.5, 1.8, 2.1, 2.4, 2.7, 3.0, 3.3}
	if cfg.Quick {
		sets = 60
		utils = []float64{1.5, 2.1, 2.7, 3.3}
	}

	t := report.NewTable(fmt.Sprintf("Admission ratio over %d random task sets per point (3×1, 2 levels, Tmax = 65 °C)", sets),
		"total util", "LNS", "EXS", "AO")
	r := rand.New(rand.NewSource(cfg.Seed + 99))
	// Track dominance for the shape check.
	var aoWins, exsWins int
	prevAO := 1.0
	for _, u := range utils {
		spec := rt.DefaultGenSpec(6, u)
		// Keep every task period an order of magnitude above AO's ~2 ms
		// oscillation cycle so the fluid approximation applies, and cap
		// individual utilizations below any single core's sustained speed
		// (a task heavier than one AO core but lighter than one EXS
		// 1.3 V core would reward CONCENTRATED capacity — a bin-packing
		// fragmentation effect orthogonal to the thermal comparison; see
		// the prose note below).
		spec.PeriodMin, spec.PeriodMax = 30e-3, 300e-3
		spec.UtilCap = 0.8
		admitted := make([]int, len(policies))
		for s := 0; s < sets; s++ {
			tasks, err := rt.Generate(r, spec)
			if err != nil {
				return err
			}
			minP := rt.MinPeriod(tasks)
			for k, pol := range policies {
				// Partition against each policy's own speed vector (an
				// EXS assignment may shut cores down entirely).
				part, err := rt.PartitionBySpeeds(tasks, pol.speeds)
				if err != nil {
					return err
				}
				adm, err := rt.Admissible(part, pol.speeds, pol.cycle, minP)
				if err != nil {
					return err
				}
				if adm.Admissible {
					admitted[k]++
				}
			}
		}
		ratio := func(k int) float64 { return float64(admitted[k]) / float64(sets) }
		t.AddRowf(u, ratio(0), ratio(1), ratio(2))
		if admitted[2] > admitted[1] {
			aoWins++
		}
		if admitted[1] > admitted[0] {
			exsWins++
		}
		if admitted[2] < admitted[1] || admitted[1] < admitted[0] {
			return fmt.Errorf("expr: admission dominance violated at U=%v: %v", u, admitted)
		}
		// Monotone within sampling noise (task sets are independent draws
		// per load level, so allow a few percentage points of slack).
		aoRatio := ratio(2)
		if aoRatio > prevAO+0.06 {
			return fmt.Errorf("expr: admission ratio rose with load at U=%v beyond noise", u)
		}
		if aoRatio < prevAO {
			prevAO = aoRatio
		}
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	if aoWins == 0 {
		return fmt.Errorf("expr: admission: AO never admitted more than EXS — sweep misconfigured")
	}
	fmt.Fprintf(w, "AO strictly beats EXS at %d of %d load levels (and never loses): the thermal throughput gain is admission capacity.\n", aoWins, len(utils))
	fmt.Fprintf(w, "Caveat observed during calibration: with individual tasks heavier than one AO core (u > ~1.05) but lighter than a 1.3 V core, EXS's CONCENTRATED two-fast-cores assignment can win on bin packing — fragmentation, not thermals.\n\n")
	return nil
}
