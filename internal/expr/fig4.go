package expr

import (
	"fmt"
	"io"
	"math/rand"

	"thermosc/internal/report"
	"thermosc/internal/sim"
)

// Fig4 reproduces §VI-B: a random step-up schedule (period 1 s, up to 3
// intervals per core) on the 6-core platform, traced from ambient. In the
// stable status the peak temperature of every core occurs at the end of
// the period (Theorem 1), and starting from ambient the per-period end
// temperatures rise monotonically toward it.
func Fig4(w io.Writer, cfg Config) error {
	md, err := platform(3, 2)
	if err != nil {
		return err
	}
	r := rand.New(rand.NewSource(cfg.Seed + 4))
	s := randomStepUp(r, md.Floorplan(), 1.0, 3)

	// Trace from ambient across enough periods to approach stability.
	periods := 40
	if cfg.Quick {
		periods = 15
	}
	tr := sim.Transient(md, s, md.ZeroState(), periods, 16)

	st, err := sim.NewStable(md, s)
	if err != nil {
		return err
	}
	endPeak, endCore := st.PeakEndOfPeriod()
	densePeak, denseCore, denseAt := st.PeakDense(64)

	t := report.NewTable("Fig. 4: step-up schedule peak location in the stable status",
		"quantity", "value")
	t.AddRowf("schedule period [s]", s.Period())
	t.AddRowf("peak at period end [°C] (Theorem 1)", md.Absolute(endPeak))
	t.AddRowf("hottest core (period end)", endCore)
	t.AddRowf("dense-search peak [°C]", md.Absolute(densePeak))
	t.AddRowf("dense-search location [s into period]", denseAt)
	t.AddRowf("dense-search hottest core", denseCore)
	if _, err := t.WriteTo(w); err != nil {
		return err
	}

	if densePeak > endPeak+1e-6 {
		return fmt.Errorf("expr: fig4 Theorem 1 violated: dense peak %.6f above period-end %.6f", densePeak, endPeak)
	}
	if denseAt < 0.95*s.Period() {
		return fmt.Errorf("expr: fig4 peak not at the period end (found at %.3f s)", denseAt)
	}

	// Per-period end temperature of the hottest core must rise
	// monotonically from ambient (Fig. 4a shape).
	var prev float64 = -1
	for k := 16; k < len(tr.Times); k += 16 {
		cur := tr.Temps[k][endCore]
		if cur < prev-1e-9 {
			return fmt.Errorf("expr: fig4 heating not monotone at period %d: %.4f < %.4f", k/16, cur, prev)
		}
		prev = cur
	}

	// ASCII rendering of the heat-up trace for the hottest core.
	series := tr.CoreSeries(md, endCore)
	fmt.Fprint(w, report.ASCIIPlot(
		fmt.Sprintf("Heat-up from ambient, hottest core %d (x in s)", endCore),
		tr.Times, [][]float64{series}, 72, 10))
	fmt.Fprintln(w)
	return nil
}
