package expr

import (
	"fmt"
	"io"

	"thermosc/internal/power"
	"thermosc/internal/report"
	"thermosc/internal/schedule"
	"thermosc/internal/sim"
)

// Fig3 reproduces §VI-A: on the 3×1 platform with a 6 s period, every core
// runs 3 s at 0.6 V and 3 s at 1.3 V. Core 1's high interval starts at
// x1 = 3 s; the high-interval start times x2 and x3 of cores 2 and 3 sweep
// over [0, 6) s. The peak temperature varies widely with the phases, and
// the step-up alignment (x2 = x3 = 3 s) attains the maximum — the bound of
// Theorem 2. (Paper: max 84.13 °C at x2 = x3 = 3 s; min 71.22 °C at
// x2 = 0.6 s, x3 = 4.2 s.)
func Fig3(w io.Writer, cfg Config) error {
	md, err := platform(3, 1)
	if err != nil {
		return err
	}
	const period = 6.0
	step := 0.1
	samples := 24
	if cfg.Quick {
		step = 0.5
		samples = 12
	}

	hi, lo := power.NewMode(1.3), power.NewMode(0.6)
	// Base step-up timeline: low 3 s then high 3 s (high starts at 3 s).
	baseCore := []schedule.Segment{
		{Length: 3, Mode: lo},
		{Length: 3, Mode: hi},
	}
	makeSched := func(x2, x3 float64) *schedule.Schedule {
		s := schedule.Must([][]schedule.Segment{baseCore, baseCore, baseCore})
		// Shifting by (x − 3) moves the high-interval start from 3 to x.
		s = s.Shift(1, x2-3)
		s = s.Shift(2, x3-3)
		return s
	}

	var (
		maxPeak, minPeak           = -1.0, 1e18
		maxX2, maxX3, minX2, minX3 float64
		evals                      int
	)
	for x2 := 0.0; x2 < period-1e-9; x2 += step {
		for x3 := 0.0; x3 < period-1e-9; x3 += step {
			s := makeSched(x2, x3)
			st, err := sim.NewStable(md, s)
			if err != nil {
				return err
			}
			p, _, _ := st.PeakDense(samples)
			evals++
			if p > maxPeak {
				maxPeak, maxX2, maxX3 = p, x2, x3
			}
			if p < minPeak {
				minPeak, minX2, minX3 = p, x2, x3
			}
		}
	}

	// The step-up bound: all cores aligned low-then-high (x = 3 s).
	stepUp := makeSched(3, 3)
	stU, err := sim.NewStable(md, stepUp)
	if err != nil {
		return err
	}
	boundPeak, _ := stU.PeakEndOfPeriod()

	t := report.NewTable(fmt.Sprintf("Fig. 3: peak temperature over %d phase combinations (paper: max 84.13 °C at x2=x3=3, min 71.22 °C)", evals),
		"quantity", "peak [°C]", "x2 [s]", "x3 [s]")
	t.AddRowf("maximum over sweep", md.Absolute(maxPeak), maxX2, maxX3)
	t.AddRowf("minimum over sweep", md.Absolute(minPeak), minX2, minX3)
	t.AddRowf("step-up bound (Theorem 2)", md.Absolute(boundPeak), 3.0, 3.0)
	if _, err := t.WriteTo(w); err != nil {
		return err
	}

	// Theorem 2's bound holds to within the small cross-coupling margin
	// documented in EXPERIMENTS.md (the omitted proof does not cover
	// non-monotone cross-core heat kernels).
	if maxPeak > boundPeak+0.1 {
		return fmt.Errorf("expr: fig3 bound violated beyond the documented margin: sweep max %.4f vs step-up bound %.4f", maxPeak, boundPeak)
	}
	if maxX2 != 3 || maxX3 != 3 {
		fmt.Fprintf(w, "note: sweep maximum found at (%.1f, %.1f), paper reports the aligned point (3, 3); values within %.3f K of the bound.\n\n",
			maxX2, maxX3, boundPeak-maxPeak)
	}
	return nil
}
