// Package expr regenerates every table and figure of the paper's
// evaluation (§III motivation Tables II–III, Figs. 2–7, Table V) on the
// repository's calibrated thermal substrate, plus the ablation studies
// DESIGN.md calls out. Each experiment is a named Runner writing textual
// tables (and ASCII plots where the paper shows traces) to an io.Writer;
// EXPERIMENTS.md records paper-reported vs. measured values.
package expr

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"

	"thermosc/internal/floorplan"
	"thermosc/internal/power"
	"thermosc/internal/schedule"
	"thermosc/internal/solver"
	"thermosc/internal/thermal"
)

// Config tunes experiment cost. Quick mode shrinks sweeps by roughly an
// order of magnitude so the full suite stays test-friendly; the shapes
// being verified are unchanged.
type Config struct {
	Quick bool
	// Seed drives the random schedule generators (Figs. 4 and 5).
	Seed int64
}

// Runner executes one experiment.
type Runner func(w io.Writer, cfg Config) error

// registryEntry pairs a runner with its description for listings.
type registryEntry struct {
	name string
	desc string
	run  Runner
}

var registry = []registryEntry{
	{"motivation", "§III Tables II & III: two-mode ratios and period sensitivity on 3×1", Motivation},
	{"fig2", "Fig. 2: single-core vs all-core oscillation on 2×1", Fig2},
	{"fig3", "Fig. 3: step-up schedule bounds arbitrary phase shifts on 3×1", Fig3},
	{"fig4", "Fig. 4: step-up temperature trace on a 6-core platform (Theorem 1)", Fig4},
	{"fig5", "Fig. 5: peak temperature vs m on a 9-core platform (Theorem 5)", Fig5},
	{"fig6", "Fig. 6: LNS/EXS/AO/PCO throughput across cores × voltage levels", Fig6},
	{"fig7", "Fig. 7: throughput across cores × Tmax at 2 voltage levels", Fig7},
	{"tablev", "Table V: computation time of AO/PCO/EXS across cores × levels", TableV},
	{"ablation", "Ablations: thermal-model variant, fixed-m, overhead sensitivity", Ablation},
	{"reactive", "Beyond the paper: reactive DTM governors vs proactive AO", Reactive},
	{"reliability", "Beyond the paper: thermal cycling fatigue of m-oscillation", Reliability},
	{"stacked", "Beyond the paper: AO on a 3D two-layer stack vs planar (§I motivation)", Stacked},
	{"admission", "Beyond the paper: real-time admission ratio over random task sets", Admission},
	{"robustness", "Beyond the paper: AO's guarantee under ±10% model uncertainty", Robustness},
	{"scaling", "Beyond the paper: AO cost on grids up to 6×6 (36 cores)", Scaling},
	{"tdp", "Beyond the paper: TDP power capping vs direct thermal capping (ref. [9])", TDP},
	{"actuation", "Beyond the paper: planned vs executed throughput under DVFS stalls", Actuation},
}

// Names returns the registered experiment names in run order.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.name
	}
	return out
}

// Describe returns the one-line description of an experiment.
func Describe(name string) string {
	for _, e := range registry {
		if e.name == name {
			return e.desc
		}
	}
	return ""
}

// Run executes the named experiment.
func Run(name string, w io.Writer, cfg Config) error {
	for _, e := range registry {
		if e.name == name {
			return e.run(w, cfg)
		}
	}
	names := Names()
	sort.Strings(names)
	return fmt.Errorf("expr: unknown experiment %q (have %v)", name, names)
}

// All executes every experiment in order.
func All(w io.Writer, cfg Config) error {
	for _, e := range registry {
		fmt.Fprintf(w, "==== %s: %s ====\n\n", e.name, e.desc)
		if err := e.run(w, cfg); err != nil {
			return fmt.Errorf("expr: %s: %w", e.name, err)
		}
	}
	return nil
}

// AllParallel runs every experiment concurrently (they share no mutable
// state — each builds its own models and RNGs), buffering each one's
// output and emitting the sections in registry order. The first error
// wins; remaining experiments still run to completion.
func AllParallel(w io.Writer, cfg Config) error {
	type outcome struct {
		buf bytes.Buffer
		err error
	}
	results := make([]outcome, len(registry))
	var wg sync.WaitGroup
	wg.Add(len(registry))
	for i := range registry {
		go func(i int) {
			defer wg.Done()
			results[i].err = registry[i].run(&results[i].buf, cfg)
		}(i)
	}
	wg.Wait()
	for i, e := range registry {
		fmt.Fprintf(w, "==== %s: %s ====\n\n", e.name, e.desc)
		if _, err := results[i].buf.WriteTo(w); err != nil {
			return err
		}
		if results[i].err != nil {
			return fmt.Errorf("expr: %s: %w", e.name, results[i].err)
		}
	}
	return nil
}

// paperConfigs are the multi-core layouts of §VI.
var paperConfigs = []struct {
	Name       string
	Rows, Cols int
}{
	{"2 cores", 2, 1},
	{"3 cores", 3, 1},
	{"6 cores", 3, 2},
	{"9 cores", 3, 3},
}

// platform builds the calibrated layered model for a paper layout.
func platform(rows, cols int) (*thermal.Model, error) {
	return thermal.Default(rows, cols)
}

// problem assembles a solver.Problem with the paper's defaults.
func problem(md *thermal.Model, levels *power.LevelSet, tmaxC float64) solver.Problem {
	return solver.Problem{
		Model:    md,
		Levels:   levels,
		TmaxC:    tmaxC,
		Overhead: power.DefaultOverhead(),
	}
}

// randomStepUp generates a random periodic step-up schedule: each core
// gets up to maxSegs segments with non-decreasing voltages drawn from the
// full DVFS range (the generator behind Figs. 4 and 5).
func randomStepUp(r *rand.Rand, fp *floorplan.Floorplan, period float64, maxSegs int) *schedule.Schedule {
	volts := power.FullRange().Voltages()
	cores := make([][]schedule.Segment, fp.NumCores())
	for i := range cores {
		k := 1 + r.Intn(maxSegs)
		// k ascending voltages.
		chosen := make([]float64, k)
		for a := range chosen {
			chosen[a] = volts[r.Intn(len(volts))]
		}
		sort.Float64s(chosen)
		// Random positive lengths summing to the period.
		weights := make([]float64, k)
		var sum float64
		for a := range weights {
			weights[a] = 0.2 + r.Float64()
			sum += weights[a]
		}
		for a, v := range chosen {
			cores[i] = append(cores[i], schedule.Segment{
				Length: period * weights[a] / sum,
				Mode:   power.NewMode(v),
			})
		}
	}
	return schedule.Must(cores)
}
