package expr

import (
	"fmt"
	"io"

	"thermosc/internal/floorplan"
	"thermosc/internal/power"
	"thermosc/internal/report"
	"thermosc/internal/schedule"
	"thermosc/internal/sim"
	"thermosc/internal/solver"
	"thermosc/internal/thermal"
)

// Robustness answers the adopter's question about any offline guarantee:
// the schedule was proven safe on the NOMINAL model — what happens on the
// real chip, whose package and power parameters differ? We re-evaluate
// AO's nominal schedule on models with every thermally-adverse ±10%
// single-parameter perturbation (worse sink, worse spreading, hotter
// silicon, leakier process) and on the all-adverse corner, then show that
// solving with a derated threshold restores safety on the corner at a
// quantified throughput cost.
func Robustness(w io.Writer, cfg Config) error {
	const tmaxC = 65.0
	levels, err := power.PaperLevels(2)
	if err != nil {
		return err
	}
	fp := floorplan.MustGrid(3, 1, 4e-3)

	nominalPkg := thermal.HotSpot65nm()
	nominalPwr := power.DefaultModel()
	mdNominal, err := thermal.NewModel(fp, nominalPkg, nominalPwr)
	if err != nil {
		return err
	}
	ao, err := solver.AO(problem(mdNominal, levels, tmaxC))
	if err != nil {
		return err
	}
	if !ao.Feasible {
		return fmt.Errorf("expr: robustness: nominal AO infeasible")
	}

	// Thermally-adverse single-parameter perturbations (+10% each).
	perturbations := []struct {
		name string
		pkg  func(thermal.PackageParams) thermal.PackageParams
		pwr  func(power.Model) power.Model
	}{
		{"nominal", nil, nil},
		{"ConvectionR +10%", func(p thermal.PackageParams) thermal.PackageParams {
			p.ConvectionR *= 1.1
			return p
		}, nil},
		{"SinkBaseR +10%", func(p thermal.PackageParams) thermal.PackageParams {
			p.SinkBaseR *= 1.1
			return p
		}, nil},
		{"TIM conductivity −10%", func(p thermal.PackageParams) thermal.PackageParams {
			p.KTIM *= 0.9
			return p
		}, nil},
		{"dynamic power +10%", nil, func(m power.Model) power.Model {
			m.Gamma *= 1.1
			return m
		}},
		{"leakage slope +10%", nil, func(m power.Model) power.Model {
			m.Beta *= 1.1
			return m
		}},
	}

	evalOn := func(pkg thermal.PackageParams, pwr power.Model, sched *schedule.Schedule) (float64, error) {
		md, err := thermal.NewModel(fp, pkg, pwr)
		if err != nil {
			return 0, err
		}
		st, err := sim.NewStable(md, sched)
		if err != nil {
			return 0, err
		}
		peak, _, _ := st.PeakDense(32)
		return md.Absolute(peak), nil
	}

	t := report.NewTable("Nominal AO schedule re-evaluated on perturbed models (3×1, 2 levels, Tmax = 65 °C)",
		"model", "true peak [°C]", "excess [K]")
	worst := 0.0
	for _, pert := range perturbations {
		pkg, pwr := nominalPkg, nominalPwr
		if pert.pkg != nil {
			pkg = pert.pkg(pkg)
		}
		if pert.pwr != nil {
			pwr = pert.pwr(pwr)
		}
		peak, err := evalOn(pkg, pwr, ao.Schedule)
		if err != nil {
			return err
		}
		t.AddRowf(pert.name, peak, peak-tmaxC)
		if peak-tmaxC > worst {
			worst = peak - tmaxC
		}
	}
	// The all-adverse corner.
	cornerPkg := nominalPkg
	cornerPkg.ConvectionR *= 1.1
	cornerPkg.SinkBaseR *= 1.1
	cornerPkg.KTIM *= 0.9
	cornerPwr := nominalPwr
	cornerPwr.Gamma *= 1.1
	cornerPwr.Beta *= 1.1
	cornerPeak, err := evalOn(cornerPkg, cornerPwr, ao.Schedule)
	if err != nil {
		return err
	}
	t.AddRowf("all-adverse corner", cornerPeak, cornerPeak-tmaxC)
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	if cornerPeak <= tmaxC {
		return fmt.Errorf("expr: robustness: corner unexpectedly safe — perturbations too weak")
	}

	// Derating: pick the guard band from the corner excess and re-solve.
	guard := cornerPeak - tmaxC + 0.1
	aoDerated, err := solver.AO(problem(mdNominal, levels, tmaxC-guard))
	if err != nil {
		return err
	}
	deratedPeak, err := evalOn(cornerPkg, cornerPwr, aoDerated.Schedule)
	if err != nil {
		return err
	}
	t2 := report.NewTable(fmt.Sprintf("Derated solve (Tmax − %.2f K guard) on the all-adverse corner", guard),
		"schedule", "throughput", "corner peak [°C]", "safe")
	t2.AddRowf("nominal AO", ao.Throughput, cornerPeak, cornerPeak <= tmaxC)
	t2.AddRowf("derated AO", aoDerated.Throughput, deratedPeak, deratedPeak <= tmaxC)
	if _, err := t2.WriteTo(w); err != nil {
		return err
	}
	if deratedPeak > tmaxC+1e-6 {
		return fmt.Errorf("expr: robustness: derated schedule still unsafe on the corner (%.3f °C)", deratedPeak)
	}
	fmt.Fprintf(w, "A %.1f K guard band absorbs every ±10%% model error at a %.1f%% throughput cost — the price of an offline guarantee on an uncertain model.\n\n",
		guard, 100*(1-aoDerated.Throughput/ao.Throughput))
	return nil
}
