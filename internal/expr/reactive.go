package expr

import (
	"fmt"
	"io"

	"thermosc/internal/governor"
	"thermosc/internal/power"
	"thermosc/internal/report"
	"thermosc/internal/solver"
)

// Reactive quantifies the paper's §I argument for proactive DTM: reactive
// governors (step-wise, on-off, PI feedback) acting on realistic sensors
// (10 ms polling, ±1 K noise, 1 K quantization) either violate the peak
// temperature constraint or must run a guard band that costs throughput —
// while AO guarantees the constraint offline and fills the envelope.
//
// Setup: 3×1 platform, 2 voltage levels, Tmax = 65 °C.
func Reactive(w io.Writer, cfg Config) error {
	md, err := platform(3, 1)
	if err != nil {
		return err
	}
	levels, err := power.PaperLevels(2)
	if err != nil {
		return err
	}
	const tmaxC = 65.0
	// The statistics are only meaningful once the slow sink has settled:
	// warm up for several dominant time constants, then measure.
	warmup := 5 * md.DominantTimeConstant()
	horizon := warmup + 90
	if cfg.Quick {
		horizon = warmup + 30
	}

	// Proactive reference: AO, with its schedule's stable peak verified.
	ao, err := solver.AO(problem(md, levels, tmaxC))
	if err != nil {
		return err
	}
	if !ao.Feasible {
		return fmt.Errorf("expr: reactive: AO infeasible")
	}

	sensor := governor.DefaultSensor()
	nLevels := levels.Len()
	policies := []struct {
		label string
		pol   governor.Policy
	}{
		{"step-wise @ trip=Tmax", &governor.StepWise{TripC: tmaxC, HystK: 2, Levels: nLevels}},
		{"step-wise @ trip=Tmax−5K", &governor.StepWise{TripC: tmaxC - 5, HystK: 2, Levels: nLevels}},
		{"on-off @ trip=Tmax−1K", &governor.OnOff{TripC: tmaxC - 1, ResumeC: tmaxC - 8, Levels: nLevels}},
		{"PI @ set=Tmax−3K", governor.NewPI(tmaxC-3, 0.05, 0.002, levels)},
		{"predictive (model-based)", governor.NewPredictive(md, levels, tmaxC, 2.0, sensor.PeriodS)},
	}

	// AO's chip-wide DVFS transition rate: 2 per oscillating core per
	// cycle, cycle = the returned schedule's period.
	oscCores := 0
	for i := 0; i < ao.Schedule.NumCores(); i++ {
		if len(ao.Schedule.CoreSegments(i)) > 1 {
			oscCores++
		}
	}
	aoSwitchRate := 2 * float64(oscCores) / ao.Schedule.Period()

	t := report.NewTable("Reactive governors vs proactive AO (3×1, 2 levels, Tmax = 65 °C, noisy 10 ms sensor)",
		"policy", "throughput", "true peak [°C]", "violation [% time]", "DVFS switches/s")
	t.AddRowf("AO (proactive, guaranteed)", ao.Throughput, ao.PeakC(md), 0.0, aoSwitchRate)
	var tightViolates bool
	var guardedThroughput float64
	for k, pc := range policies {
		res, err := governor.Simulate(md, levels, pc.pol, sensor, tmaxC, horizon, warmup, 4, cfg.Seed+int64(k))
		if err != nil {
			return err
		}
		t.AddRowf(pc.label, res.Throughput, res.TruePeakC, 100*res.ViolationFrac,
			float64(res.Switches)/horizon)
		if k == 0 && res.TruePeakC > tmaxC {
			tightViolates = true
		}
		if k == 1 {
			guardedThroughput = res.Throughput
		}
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}

	if !tightViolates {
		return fmt.Errorf("expr: reactive shape violated: tight-trip governor did not overshoot")
	}
	if guardedThroughput >= ao.Throughput {
		return fmt.Errorf("expr: reactive shape violated: guarded governor (%.4f) should trail AO (%.4f)",
			guardedThroughput, ao.Throughput)
	}
	fmt.Fprintf(w, "Shape: the tight-trip reactive governor violates the cap (it can only react after crossing);\n")
	fmt.Fprintf(w, "adding a guard band restores safety but cedes throughput to the proactive schedule. Even the\n")
	fmt.Fprintf(w, "model-predictive governor — using the SAME exact thermal model online — trails AO, because one\n")
	fmt.Fprintf(w, "uniform level per sensor period cannot shape the sub-interval oscillation the offline schedule uses.\n\n")
	return nil
}
