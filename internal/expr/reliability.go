package expr

import (
	"fmt"
	"io"

	"thermosc/internal/power"
	"thermosc/internal/reliability"
	"thermosc/internal/report"
	"thermosc/internal/schedule"
	"thermosc/internal/sim"
)

// Reliability addresses the natural objection to the paper's proposal —
// doesn't frequency oscillation wear the chip out through thermal
// cycling? — with rainflow cycle counting and a Coffin–Manson fatigue
// model over the stable-status traces of the m-oscillating schedule.
//
// The honest physics has a knee: while the oscillation cycle is LONGER
// than the die's thermal time constant, every cycle swings the full
// amplitude, so doubling m doubles the cycle count at undiminished
// amplitude and the fatigue rate RISES. Once the cycle outpaces the die
// time constant (a few ms here), the amplitude attenuates roughly
// linearly in the cycle time, and with Coffin–Manson exponent Q ≈ 2.35 the
// total damage rate collapses. The paper's m-oscillating schedules live
// ON THE FAST SIDE of this knee (milliseconds and below), where faster is
// gentler; slow oscillation (reactive governors banging at sensor rates
// comparable to the die time constant) sits at the worst point.
func Reliability(w io.Writer, cfg Config) error {
	md, err := platform(3, 1)
	if err != nil {
		return err
	}
	// Deep two-mode schedule on the paper's default 20 ms base period:
	// half 0.6 V and half 1.3 V per core.
	specs := make([]schedule.TwoModeSpec, 3)
	for i := range specs {
		specs[i] = schedule.TwoModeSpec{
			Low:       power.NewMode(0.6),
			High:      power.NewMode(1.3),
			HighRatio: 0.5,
		}
	}
	base, err := schedule.TwoMode(20e-3, specs)
	if err != nil {
		return err
	}

	cm := reliability.DefaultCoffinManson()
	cm.MinAmplitudeK = 0.01 // keep even strongly attenuated ripple visible
	ar := reliability.DefaultArrhenius()
	samples := 1024
	ms := []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
	if cfg.Quick {
		samples = 384
		ms = []int{1, 4, 16, 64, 256}
	}

	t := report.NewTable("Thermal cycling vs oscillation count m (3×1, 0.6/1.3 V half-duty, t_p = 20 ms)",
		"m", "cycle [ms]", "peak [°C]", "mean ΔT/2 [K]", "fatigue rate (rel)", "EM accel vs 35 °C")
	amps := make([]float64, 0, len(ms))
	fatigues := make([]float64, 0, len(ms))
	for _, m := range ms {
		cyc := base.Cycle(m)
		stable, err := sim.NewStable(md, cyc)
		if err != nil {
			return err
		}
		_, hot := stable.PeakEndOfPeriod()
		series := make([]float64, samples)
		for k := 0; k < samples; k++ {
			state := stable.At(cyc.Period() * float64(k) / float64(samples))
			series[k] = md.Absolute(state[hot])
		}
		cycles := reliability.RainflowPeriodic(series)
		var count, ampSum float64
		for _, c := range cycles {
			if c.AmplitudeK < cm.MinAmplitudeK {
				continue
			}
			count += c.Count
			ampSum += c.Count * c.AmplitudeK
		}
		meanAmp := 0.0
		if count > 0 {
			meanAmp = ampSum / count
		}
		fatigue := cm.Damage(cycles) / cyc.Period()
		em := ar.MeanAcceleration(series, 35)
		peak, _ := stable.PeakEndOfPeriod()
		t.AddRowf(m, cyc.Period()*1e3, md.Absolute(peak), meanAmp, fatigue, em)
		amps = append(amps, meanAmp)
		fatigues = append(fatigues, fatigue)
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}

	// Shape checks.
	// (a) Cycle amplitude is non-increasing in m (5% slack for rainflow
	//     discretization).
	for k := 1; k < len(amps); k++ {
		if amps[k] > amps[k-1]*1.05 {
			return fmt.Errorf("expr: reliability amplitude rose with m: %v", amps)
		}
	}
	// (b) The fastest oscillation attenuates the amplitude strongly.
	if amps[len(amps)-1] > 0.5*amps[0] {
		return fmt.Errorf("expr: reliability amplitude did not attenuate: %v", amps)
	}
	// (c) The fatigue-rate curve turns over: its maximum is interior (or
	//     at m=1), and the fastest point is well below the maximum.
	maxF, argmax := fatigues[0], 0
	for k, f := range fatigues {
		if f > maxF {
			maxF, argmax = f, k
		}
	}
	if argmax == len(fatigues)-1 {
		return fmt.Errorf("expr: reliability fatigue still rising at the fastest m: %v", fatigues)
	}
	if fatigues[len(fatigues)-1] > 0.8*maxF {
		return fmt.Errorf("expr: reliability fatigue did not fall past the knee: %v", fatigues)
	}
	fmt.Fprintf(w, "Knee at m = %d (cycle ≈ %.2f ms, comparable to the die time constant): fatigue rises while cycles still swing fully, then collapses %.1f× by m = %d as the amplitude attenuates. The paper's schedules operate on the fast side of the knee; slow banging (reactive governors at sensor rates) sits at the worst point. The Arrhenius (sustained-temperature) term is flat in m.\n\n",
		ms[argmax], base.Period()*1e3/float64(ms[argmax]), maxF/fatigues[len(fatigues)-1], ms[len(ms)-1])
	return nil
}
