package mat

import (
	"errors"
	"math"
	"sort"
)

// SymEigen holds the eigendecomposition of a real symmetric matrix:
// S = V·diag(Values)·Vᵀ with orthonormal V (columns are eigenvectors).
type SymEigen struct {
	Values  []float64 // eigenvalues, ascending
	Vectors *Dense    // column j is the eigenvector for Values[j]
}

// maxJacobiSweeps bounds the cyclic Jacobi iteration. Convergence for
// symmetric matrices is quadratic; 64 sweeps is far beyond what any
// reasonable input needs and exists only to turn pathological inputs
// (NaNs etc.) into an error instead of a hang.
const maxJacobiSweeps = 64

// SymEigenDecompose computes the eigendecomposition of the symmetric matrix
// s with the cyclic Jacobi method. Only the lower triangle is read; slight
// asymmetry from floating-point construction is therefore harmless.
func SymEigenDecompose(s *Dense) (*SymEigen, error) {
	if !s.IsSquare() {
		return nil, errors.New("mat: SymEigenDecompose requires a square matrix")
	}
	n := s.rows
	// Work on a symmetrized copy.
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := 0.5 * (s.At(i, j) + s.At(j, i))
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	v := Eye(n)
	ad := a.data
	vd := v.data

	offDiag := func() float64 {
		var sum float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				sum += ad[i*n+j] * ad[i*n+j]
			}
		}
		return math.Sqrt(sum)
	}

	scale := a.NormFrob()
	if scale == 0 {
		scale = 1
	}
	tol := 1e-14 * scale

	for sweep := 0; sweep < maxJacobiSweeps; sweep++ {
		if offDiag() <= tol {
			return sortedSymEigen(a, v), nil
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := ad[p*n+q]
				if math.Abs(apq) <= 1e-300 {
					continue
				}
				app := ad[p*n+p]
				aqq := ad[q*n+q]
				// Compute the Jacobi rotation (c, s) zeroing a[p][q].
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				sn := t * c

				// Update rows/columns p and q of A.
				for k := 0; k < n; k++ {
					akp := ad[k*n+p]
					akq := ad[k*n+q]
					ad[k*n+p] = c*akp - sn*akq
					ad[k*n+q] = sn*akp + c*akq
				}
				for k := 0; k < n; k++ {
					apk := ad[p*n+k]
					aqk := ad[q*n+k]
					ad[p*n+k] = c*apk - sn*aqk
					ad[q*n+k] = sn*apk + c*aqk
				}
				// Accumulate the rotation into V.
				for k := 0; k < n; k++ {
					vkp := vd[k*n+p]
					vkq := vd[k*n+q]
					vd[k*n+p] = c*vkp - sn*vkq
					vd[k*n+q] = sn*vkp + c*vkq
				}
			}
		}
	}
	if offDiag() <= tol*1e3 {
		// Accept a slightly looser tolerance rather than fail outright.
		return sortedSymEigen(a, v), nil
	}
	return nil, errors.New("mat: Jacobi eigensolver did not converge")
}

func sortedSymEigen(a, v *Dense) *SymEigen {
	n := a.rows
	vals := a.Diag()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return vals[idx[i]] < vals[idx[j]] })
	sortedVals := make([]float64, n)
	vecs := NewDense(n, n)
	for newJ, oldJ := range idx {
		sortedVals[newJ] = vals[oldJ]
		for i := 0; i < n; i++ {
			vecs.Set(i, newJ, v.At(i, oldJ))
		}
	}
	return &SymEigen{Values: sortedVals, Vectors: vecs}
}
