package mat

import (
	"fmt"
	"math"
)

// This file implements the action of the matrix exponential,
// dst = e^{t·A}·b, without ever forming e^{t·A} — the Al-Mohy–Higham
// truncated-Taylor scheme (SIAM J. Sci. Comput. 33(2), 2011): shift A by
// μ = trace(A)/n to center its spectrum, split t into s substeps chosen
// from a θ-table so the Taylor series of each substep converges in at
// most mMax terms, and terminate each series early once two consecutive
// terms are negligible relative to the running sum. Cost is O(s·m) sparse
// matrix-vector products; nothing dense of size dim² is ever touched.

// expmvTol is the relative truncation tolerance of the Taylor series —
// double-precision unit roundoff, matching the "double" θ-table below.
// See docs/SPARSE.md for the tolerance discussion.
const expmvTol = 1.1102230246251565e-16 // 2^-53

// expmvTheta maps the Taylor degree m to θ_m, the largest ‖t·(A−μI)‖₁
// for which a degree-m series meets expmvTol. Instead of transcribing
// the Al-Mohy–Higham table, θ_m is derived at init from the explicit
// scalar tail bound: the largest θ with e^θ − Σ_{k≤m} θ^k/k! ≤ tol·e^θ.
// This is (slightly) conservative relative to the paper's backward-error
// values — conservative only costs substeps, never accuracy, and the
// per-term early-exit test below recovers most of the slack.
var expmvTheta = func() []struct {
	m     int
	theta float64
} {
	table := make([]struct {
		m     int
		theta float64
	}, 0, 11)
	for m := 5; m <= 55; m += 5 {
		lo, hi := 0.0, 60.0
		for iter := 0; iter < 200; iter++ {
			mid := 0.5 * (lo + hi)
			if taylorTailRel(mid, m) <= expmvTol {
				lo = mid
			} else {
				hi = mid
			}
		}
		table = append(table, struct {
			m     int
			theta float64
		}{m, lo})
	}
	return table
}()

// taylorTailRel returns (e^θ − Σ_{k≤m} θ^k/k!)/e^θ, the relative
// truncation error of the degree-m Taylor series at the scalar θ ≥ 0,
// evaluated via the explicit tail sum to avoid catastrophic cancellation.
func taylorTailRel(theta float64, m int) float64 {
	// term_k = θ^k/k! starting at k = m+1, accumulated until negligible.
	logTerm := float64(m+1)*math.Log(theta) - lgammaf(m+1)
	term := math.Exp(logTerm)
	tail := 0.0
	for k := m + 1; k < m+400; k++ {
		tail += term
		term *= theta / float64(k+1)
		if term < tail*1e-20 {
			break
		}
	}
	return tail / math.Exp(theta)
}

func lgammaf(x int) float64 {
	v, _ := math.Lgamma(float64(x) + 1) // log(x!)
	return v
}

// ExpmvScratch holds the work vectors of ExpActionTo so repeated calls
// (the sim arenas' stepping loops) allocate nothing after warm-up.
type ExpmvScratch struct {
	term []float64 // current Taylor term
	tmp  []float64 // matvec destination (swapped with term)
	acc  []float64 // accumulated substep result
}

// ensure sizes the scratch for dimension n.
func (ws *ExpmvScratch) ensure(n int) {
	if cap(ws.term) < n {
		ws.term = make([]float64, n)
		ws.tmp = make([]float64, n)
		ws.acc = make([]float64, n)
	}
	ws.term = ws.term[:n]
	ws.tmp = ws.tmp[:n]
	ws.acc = ws.acc[:n]
}

// ExpActionTo computes dst = e^{t·a}·b and returns dst. a must be square,
// t must be finite and ≥ 0, and dst must not alias b. ws may be nil (a
// temporary scratch is allocated); pass a reused scratch in hot loops.
func (a *CSR) ExpActionTo(dst []float64, t float64, b []float64, ws *ExpmvScratch) []float64 {
	n, c := a.Dims()
	if n != c {
		panic(fmt.Sprintf("mat: ExpActionTo on a non-square %d×%d matrix", n, c))
	}
	if len(b) != n || len(dst) != n {
		panic(fmt.Sprintf("mat: ExpActionTo length %d/%d, want %d", len(dst), len(b), n))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) || t < 0 {
		panic(fmt.Sprintf("mat: ExpActionTo with invalid time %v", t))
	}
	if t == 0 {
		copy(dst, b)
		return dst
	}
	if ws == nil {
		ws = &ExpmvScratch{}
	}
	ws.ensure(n)

	mu := a.Trace() / float64(n)
	normtB := t * a.norm1Shifted(mu, ws.tmp)
	if normtB == 0 {
		// A = μI exactly: the action is a scalar exponential.
		eMu := math.Exp(t * mu)
		for i, v := range b {
			dst[i] = eMu * v
		}
		return dst
	}

	// Pick (m, s) minimizing the matvec count s·m with s = ⌈‖tB‖₁/θ_m⌉.
	bestM, bestS, bestCost := 0, 0, math.MaxFloat64
	for _, e := range expmvTheta {
		s := math.Ceil(normtB / e.theta)
		if cost := s * float64(e.m); cost < bestCost {
			bestCost = cost
			bestM = e.m
			bestS = int(s)
		}
	}
	eMuSub := math.Exp(t * mu / float64(bestS))
	h := t / float64(bestS)

	copy(dst, b)
	for sub := 0; sub < bestS; sub++ {
		copy(ws.acc, dst)
		copy(ws.term, dst)
		c1 := normInfVec(ws.term)
		for j := 1; j <= bestM; j++ {
			// term ← (h/j)·(A−μI)·term
			a.mulShiftedTo(ws.tmp, h/float64(j), ws.term, mu)
			ws.term, ws.tmp = ws.tmp, ws.term
			for i, v := range ws.term {
				ws.acc[i] += v
			}
			c2 := normInfVec(ws.term)
			if c1+c2 <= expmvTol*normInfVec(ws.acc) {
				break
			}
			c1 = c2
		}
		for i, v := range ws.acc {
			dst[i] = eMuSub * v
		}
	}
	return dst
}

// mulShiftedTo computes dst = s·(a − μI)·x — the kernel of the Taylor
// recurrence; dst must not alias x.
func (a *CSR) mulShiftedTo(dst []float64, s float64, x []float64, mu float64) {
	for i := 0; i < a.rows; i++ {
		var acc float64
		for p := a.rowPtr[i]; p < a.rowPtr[i+1]; p++ {
			acc += a.val[p] * x[a.colIdx[p]]
		}
		dst[i] = s * (acc - mu*x[i])
	}
}

func normInfVec(x []float64) float64 {
	var max float64
	for _, v := range x {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}
