package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewDensePanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0×3 matrix")
		}
	}()
	NewDense(0, 3)
}

func TestNewDenseDataLengthCheck(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong data length")
		}
	}()
	NewDenseData(2, 2, []float64{1, 2, 3})
}

func TestEyeAndDiag(t *testing.T) {
	i3 := Eye(3)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			want := 0.0
			if r == c {
				want = 1
			}
			if i3.At(r, c) != want {
				t.Fatalf("Eye(3)[%d][%d] = %v, want %v", r, c, i3.At(r, c), want)
			}
		}
	}
	d := DiagOf([]float64{2, 5, 7})
	if d.At(1, 1) != 5 || d.At(0, 1) != 0 {
		t.Fatalf("DiagOf wrong: %v", d)
	}
	got := d.Diag()
	if !VecEqual(got, []float64{2, 5, 7}, 0) {
		t.Fatalf("Diag() = %v", got)
	}
}

func TestAtSetAdd(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 4.5)
	if m.At(1, 2) != 4.5 {
		t.Fatalf("At after Set = %v", m.At(1, 2))
	}
	m.Add(1, 2, 0.5)
	if m.At(1, 2) != 5 {
		t.Fatalf("At after Add = %v", m.At(1, 2))
	}
}

func TestRowColClone(t *testing.T) {
	m := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if !VecEqual(m.Row(1), []float64{4, 5, 6}, 0) {
		t.Fatalf("Row(1) = %v", m.Row(1))
	}
	if !VecEqual(m.Col(2), []float64{3, 6}, 0) {
		t.Fatalf("Col(2) = %v", m.Col(2))
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestTranspose(t *testing.T) {
	m := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	mt := m.T()
	if r, c := mt.Dims(); r != 3 || c != 2 {
		t.Fatalf("T dims = %d×%d", r, c)
	}
	if mt.At(2, 1) != 6 || mt.At(0, 1) != 4 {
		t.Fatalf("T values wrong: %v", mt)
	}
	// (Aᵀ)ᵀ = A.
	if !mt.T().Equal(m, 0) {
		t.Fatal("double transpose is not identity")
	}
}

func TestMulAgainstHandComputed(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewDenseData(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := a.Mul(b)
	want := NewDenseData(2, 2, []float64{58, 64, 139, 154})
	if !got.Equal(want, 1e-12) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestMulVec(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	got := a.MulVec([]float64{1, 0, -1})
	if !VecEqual(got, []float64{-2, -2}, 1e-12) {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestMulDiag(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	l := a.MulDiagLeft([]float64{10, 100})
	if !l.Equal(NewDenseData(2, 2, []float64{10, 20, 300, 400}), 0) {
		t.Fatalf("MulDiagLeft = %v", l)
	}
	r := a.MulDiagRight([]float64{10, 100})
	if !r.Equal(NewDenseData(2, 2, []float64{10, 200, 30, 400}), 0) {
		t.Fatalf("MulDiagRight = %v", r)
	}
}

func TestNorms(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, -2, -3, 4})
	if a.Norm1() != 6 { // max column abs-sum: |−2|+|4| = 6
		t.Fatalf("Norm1 = %v", a.Norm1())
	}
	if a.NormInf() != 7 { // max row abs-sum: |−3|+|4| = 7
		t.Fatalf("NormInf = %v", a.NormInf())
	}
	if math.Abs(a.NormFrob()-math.Sqrt(30)) > 1e-12 {
		t.Fatalf("NormFrob = %v", a.NormFrob())
	}
	if a.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", a.MaxAbs())
	}
}

func TestAddSubScale(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseData(2, 2, []float64{4, 3, 2, 1})
	if !a.AddM(b).Equal(NewDenseData(2, 2, []float64{5, 5, 5, 5}), 0) {
		t.Fatal("AddM wrong")
	}
	if !a.SubM(b).Equal(NewDenseData(2, 2, []float64{-3, -1, 1, 3}), 0) {
		t.Fatal("SubM wrong")
	}
	c := a.Clone().Scale(2)
	if !c.Equal(NewDenseData(2, 2, []float64{2, 4, 6, 8}), 0) {
		t.Fatal("Scale wrong")
	}
	d := a.Clone().AddScaledInPlace(10, b)
	if !d.Equal(NewDenseData(2, 2, []float64{41, 32, 23, 14}), 0) {
		t.Fatal("AddScaledInPlace wrong")
	}
}

// Property: matrix multiplication is associative (up to round-off).
func TestMulAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		a, b, c := randomDense(r, n, n), randomDense(r, n, n), randomDense(r, n, n)
		left := a.Mul(b).Mul(c)
		right := a.Mul(b.Mul(c))
		return left.Equal(right, 1e-9*math.Max(1, left.MaxAbs()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ.
func TestMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a, b := randomDense(r, m, k), randomDense(r, k, n)
		return a.Mul(b).T().Equal(b.T().Mul(a.T()), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	m := NewDenseData(1, 2, []float64{1.5, -2})
	s := m.String()
	if s == "" {
		t.Fatal("String() returned empty")
	}
}

func TestEqualDimensionMismatch(t *testing.T) {
	if NewDense(2, 2).Equal(NewDense(2, 3), 1) {
		t.Fatal("Equal must be false for different dims")
	}
}

func TestAccessors(t *testing.T) {
	m := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("Rows/Cols = %d/%d", m.Rows(), m.Cols())
	}
	raw := m.RawData()
	if len(raw) != 6 || raw[4] != 5 {
		t.Fatalf("RawData = %v", raw)
	}
	raw[0] = 42
	if m.At(0, 0) != 42 {
		t.Fatal("RawData must alias the backing storage")
	}
}

func TestInPlaceAddSub(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseData(2, 2, []float64{4, 3, 2, 1})
	a.AddInPlace(b)
	if !a.Equal(NewDenseData(2, 2, []float64{5, 5, 5, 5}), 0) {
		t.Fatalf("AddInPlace = %v", a)
	}
	a.SubInPlace(b)
	if !a.Equal(NewDenseData(2, 2, []float64{1, 2, 3, 4}), 0) {
		t.Fatalf("SubInPlace = %v", a)
	}
	mustPanicMat(t, func() { a.AddInPlace(NewDense(3, 3)) })
}

func mustPanicMat(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestCopyFromAndZero(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	b := NewDense(2, 2)
	b.CopyFrom(a)
	if !b.Equal(a, 0) {
		t.Fatal("CopyFrom failed")
	}
	b.Zero()
	if b.MaxAbs() != 0 {
		t.Fatal("Zero failed")
	}
}
