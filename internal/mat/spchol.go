package mat

import (
	"fmt"
	"math"
)

// SparseCholesky is the factorization A = L·Lᵀ of a sparse symmetric
// positive-definite matrix, with L stored column-compressed (strictly
// lower triangle in colPtr/rowIdx/val, diagonal separately in diag).
//
// The factorization uses the up-looking algorithm in natural order: the
// RC-network matrices this repository factorizes already list the
// well-connected sink node last, which keeps fill-in low without a
// fill-reducing permutation (the mesh rows eliminate before the
// near-dense sink row). A successful factorization doubles as the
// positive-definiteness certificate the thermal layer relies on for its
// stability check.
//
// A SparseCholesky is immutable after FactorizeSparseCholesky and safe
// for concurrent SolveVecTo calls with distinct destinations.
type SparseCholesky struct {
	n      int
	colPtr []int
	rowIdx []int
	val    []float64
	diag   []float64
}

// FactorizeSparseCholesky computes the Cholesky factorization of the
// sparse symmetric positive-definite matrix a (both triangles stored).
// It returns an error if a is not positive definite — for the thermal
// conductance systems this is the "leakage slope β too large" condition.
func FactorizeSparseCholesky(a *CSR) (*SparseCholesky, error) {
	n, c := a.Dims()
	if n != c {
		return nil, fmt.Errorf("mat: sparse Cholesky of a non-square %d×%d matrix", n, c)
	}
	parent := etree(a)

	// Symbolic pass: the pattern of L's row k is the union of the etree
	// paths from each below-diagonal entry of A's row k; count how many
	// entries land in each column of L.
	colCount := make([]int, n)
	mark := make([]int, n)
	stack := make([]int, n)
	for i := range mark {
		mark[i] = -1
	}
	for k := 0; k < n; k++ {
		mark[k] = k
		for p := a.rowPtr[k]; p < a.rowPtr[k+1]; p++ {
			j := a.colIdx[p]
			if j >= k {
				continue
			}
			for i := j; mark[i] != k; i = parent[i] {
				colCount[i]++
				mark[i] = k
			}
		}
	}
	ch := &SparseCholesky{
		n:      n,
		colPtr: make([]int, n+1),
		diag:   make([]float64, n),
	}
	for i := 0; i < n; i++ {
		ch.colPtr[i+1] = ch.colPtr[i] + colCount[i]
	}
	nnz := ch.colPtr[n]
	ch.rowIdx = make([]int, nnz)
	ch.val = make([]float64, nnz)

	// Numeric pass, up-looking: for each row k solve
	// L[0:k,0:k]·L[k,0:k]ᵀ = A[0:k,k] over the symbolic pattern (emitted
	// in topological etree order so every column is finished before it is
	// used), then take the diagonal pivot.
	next := make([]int, n) // append cursor per column of L
	copy(next, ch.colPtr)
	x := make([]float64, n)
	for i := range mark {
		mark[i] = -1
	}
	for k := 0; k < n; k++ {
		// ereach: pattern of L(k, 0:k) in stack[top:n], topological order.
		top := n
		mark[k] = k
		dkk := 0.0
		for p := a.rowPtr[k]; p < a.rowPtr[k+1]; p++ {
			j := a.colIdx[p]
			if j > k {
				continue
			}
			if j == k {
				dkk = a.val[p]
				continue
			}
			x[j] = a.val[p]
			ln := 0
			for i := j; mark[i] != k; i = parent[i] {
				stack[ln] = i
				ln++
				mark[i] = k
			}
			for ln > 0 {
				ln--
				top--
				stack[top] = stack[ln]
			}
		}
		for ; top < n; top++ {
			i := stack[top]
			lki := x[i] / ch.diag[i]
			x[i] = 0
			for p := ch.colPtr[i]; p < next[i]; p++ {
				x[ch.rowIdx[p]] -= ch.val[p] * lki
			}
			dkk -= lki * lki
			ch.rowIdx[next[i]] = k
			ch.val[next[i]] = lki
			next[i]++
		}
		if !(dkk > 0) {
			return nil, fmt.Errorf("mat: sparse Cholesky pivot %d is %v — matrix not positive definite", k, dkk)
		}
		ch.diag[k] = math.Sqrt(dkk)
	}
	return ch, nil
}

// etree computes the elimination tree of the symmetric matrix a (Liu's
// algorithm with path halving via the ancestor array).
func etree(a *CSR) []int {
	n := a.rows
	parent := make([]int, n)
	ancestor := make([]int, n)
	for i := range parent {
		parent[i] = -1
		ancestor[i] = -1
	}
	for k := 0; k < n; k++ {
		for p := a.rowPtr[k]; p < a.rowPtr[k+1]; p++ {
			i := a.colIdx[p]
			for i != -1 && i < k {
				nxt := ancestor[i]
				ancestor[i] = k
				if nxt == -1 {
					parent[i] = k
				}
				i = nxt
			}
		}
	}
	return parent
}

// N returns the matrix dimension.
func (ch *SparseCholesky) N() int { return ch.n }

// NNZ returns the stored entry count of L including the diagonal.
func (ch *SparseCholesky) NNZ() int { return len(ch.val) + ch.n }

// SolveVecTo solves A·x = b into dst and returns dst. dst may alias b.
func (ch *SparseCholesky) SolveVecTo(dst, b []float64) []float64 {
	if len(b) != ch.n || len(dst) != ch.n {
		panic(fmt.Sprintf("mat: sparse Cholesky solve length %d/%d, want %d", len(dst), len(b), ch.n))
	}
	if &dst[0] != &b[0] {
		copy(dst, b)
	}
	// Forward L·y = b, column-oriented.
	for j := 0; j < ch.n; j++ {
		yj := dst[j] / ch.diag[j]
		dst[j] = yj
		for p := ch.colPtr[j]; p < ch.colPtr[j+1]; p++ {
			dst[ch.rowIdx[p]] -= ch.val[p] * yj
		}
	}
	// Backward Lᵀ·x = y: row j of Lᵀ is column j of L.
	for j := ch.n - 1; j >= 0; j-- {
		s := dst[j]
		for p := ch.colPtr[j]; p < ch.colPtr[j+1]; p++ {
			s -= ch.val[p] * dst[ch.rowIdx[p]]
		}
		dst[j] = s / ch.diag[j]
	}
	return dst
}

// SolveVec solves A·x = b into a new vector.
func (ch *SparseCholesky) SolveVec(b []float64) []float64 {
	dst := make([]float64, ch.n)
	copy(dst, b)
	return ch.SolveVecTo(dst, dst)
}
