package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExpmZero(t *testing.T) {
	z := NewDense(4, 4)
	e, err := Expm(z)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Equal(Eye(4), 1e-14) {
		t.Fatalf("e^0 != I: %v", e)
	}
}

func TestExpmDiagonal(t *testing.T) {
	a := DiagOf([]float64{1, -2, 0.5})
	e, err := Expm(a)
	if err != nil {
		t.Fatal(err)
	}
	want := DiagOf([]float64{math.E, math.Exp(-2), math.Exp(0.5)})
	if !e.Equal(want, 1e-12) {
		t.Fatalf("Expm(diag) = %v", e)
	}
}

func TestExpmKnownRotationGenerator(t *testing.T) {
	// exp([[0,−θ],[θ,0]]) = rotation by θ.
	theta := 0.7
	a := NewDenseData(2, 2, []float64{0, -theta, theta, 0})
	e, err := Expm(a)
	if err != nil {
		t.Fatal(err)
	}
	want := NewDenseData(2, 2, []float64{
		math.Cos(theta), -math.Sin(theta),
		math.Sin(theta), math.Cos(theta),
	})
	if !e.Equal(want, 1e-12) {
		t.Fatalf("rotation exp = %v, want %v", e, want)
	}
}

func TestExpmNilpotent(t *testing.T) {
	// N = [[0,1],[0,0]] ⇒ e^N = I + N exactly.
	a := NewDenseData(2, 2, []float64{0, 1, 0, 0})
	e, err := Expm(a)
	if err != nil {
		t.Fatal(err)
	}
	want := NewDenseData(2, 2, []float64{1, 1, 0, 1})
	if !e.Equal(want, 1e-13) {
		t.Fatalf("e^N = %v", e)
	}
}

func TestExpmLargeNormTriggersScaling(t *testing.T) {
	// ‖A‖ far above θ13 exercises the squaring phase.
	a := DiagOf([]float64{-30, -45})
	e, err := Expm(a)
	if err != nil {
		t.Fatal(err)
	}
	want := DiagOf([]float64{math.Exp(-30), math.Exp(-45)})
	if !e.Equal(want, 1e-12) {
		t.Fatalf("Expm with scaling = %v", e)
	}
}

// Property: e^{A(s+t)} = e^{As}·e^{At} for commuting arguments (same A).
func TestExpmSemigroupProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		a := randomDense(r, n, n)
		a.Scale(0.5)
		s, tt := r.Float64()*2, r.Float64()*2
		est, err1 := ExpmScaled(a, s+tt)
		es, err2 := ExpmScaled(a, s)
		et, err3 := ExpmScaled(a, tt)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return est.Equal(es.Mul(et), 1e-8*math.Max(1, est.MaxAbs()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: det(e^A) = e^{tr A}.
func TestExpmDeterminantTraceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		a := randomDense(r, n, n)
		e, err := Expm(a)
		if err != nil {
			return false
		}
		f2, err := Factorize(e)
		if err != nil {
			return false
		}
		var tr float64
		for i := 0; i < n; i++ {
			tr += a.At(i, i)
		}
		return math.Abs(f2.Det()-math.Exp(tr)) < 1e-7*math.Max(1, math.Exp(tr))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestExpmNonSquare(t *testing.T) {
	if _, err := Expm(NewDense(2, 3)); err == nil {
		t.Fatal("expected error for non-square input")
	}
}

func BenchmarkExpmPade10(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	a := randomDense(r, 10, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Expm(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEigenExp10(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	d, m := randomRCStyle(r, 10)
	e, err := DecomposeSymmetrizable(d, m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ExpAt(0.37)
	}
}
