package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveHandComputed(t *testing.T) {
	a := NewDenseData(2, 2, []float64{2, 1, 1, 3})
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	// 2x+y=5, x+3y=10 → x=1, y=3.
	if !VecEqual(x, []float64{1, 3}, 1e-12) {
		t.Fatalf("Solve = %v", x)
	}
}

func TestSolveRequiresPivoting(t *testing.T) {
	// Zero on the leading diagonal forces a row swap.
	a := NewDenseData(2, 2, []float64{0, 1, 1, 0})
	x, err := Solve(a, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqual(x, []float64{7, 3}, 1e-12) {
		t.Fatalf("Solve with pivoting = %v", x)
	}
}

func TestSingularDetection(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 2, 4})
	if _, err := Factorize(a); err != ErrSingular {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestInverseIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a := randomDense(r, n, n)
		// Make it comfortably nonsingular: diagonally dominant.
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n)+2)
		}
		inv, err := Inverse(a)
		if err != nil {
			return false
		}
		return a.Mul(inv).Equal(Eye(n), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDet(t *testing.T) {
	a := NewDenseData(2, 2, []float64{3, 1, 4, 2})
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Det()-2) > 1e-12 {
		t.Fatalf("Det = %v, want 2", f.Det())
	}
	// Permutation sign: swapped rows give negated determinant.
	b := NewDenseData(2, 2, []float64{4, 2, 3, 1})
	fb, err := Factorize(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fb.Det()+2) > 1e-12 {
		t.Fatalf("Det = %v, want -2", fb.Det())
	}
}

func TestSolveMatMatchesColumnSolves(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := 5
	a := randomDense(r, n, n)
	for i := 0; i < n; i++ {
		a.Add(i, i, 8)
	}
	b := randomDense(r, n, 3)
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.SolveMat(b)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Mul(x).Equal(b, 1e-9) {
		t.Fatal("A·X != B")
	}
}

func TestSolveDimensionErrors(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 0, 0, 1})
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.SolveVec([]float64{1, 2, 3}); err == nil {
		t.Fatal("expected error for wrong b length")
	}
	if _, err := f.SolveMat(NewDense(3, 1)); err == nil {
		t.Fatal("expected error for wrong B rows")
	}
	if _, err := Factorize(NewDense(2, 3)); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}

// Property: solving then multiplying returns the right-hand side.
func TestSolveRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		a := randomDense(r, n, n)
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n)+3)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		return VecEqual(a.MulVec(x), b, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
