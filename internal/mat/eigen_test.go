package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSymmetric(r *rand.Rand, n int) *Dense {
	s := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := r.NormFloat64()
			s.Set(i, j, v)
			s.Set(j, i, v)
		}
	}
	return s
}

// randomRCStyle builds a matrix with the structure of a compact RC thermal
// model: D diagonal positive and M = −G with G a symmetric, strictly
// diagonally dominant M-matrix (so A = D⁻¹M is Hurwitz).
func randomRCStyle(r *rand.Rand, n int) (dDiag []float64, m *Dense) {
	dDiag = make([]float64, n)
	for i := range dDiag {
		dDiag[i] = 0.1 + r.Float64()*5
	}
	g := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			if r.Float64() < 0.5 {
				c := r.Float64() * 2
				g.Set(i, j, -c)
				g.Set(j, i, -c)
				g.Add(i, i, c)
				g.Add(j, j, c)
			}
		}
		g.Add(i, i, 0.2+r.Float64()*3) // conductance to ambient
	}
	return dDiag, g.Scale(-1)
}

func TestSymEigenDiagonal(t *testing.T) {
	s := DiagOf([]float64{3, 1, 2})
	eig, err := SymEigenDecompose(s)
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqual(eig.Values, []float64{1, 2, 3}, 1e-12) {
		t.Fatalf("Values = %v", eig.Values)
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	s := NewDenseData(2, 2, []float64{2, 1, 1, 2})
	eig, err := SymEigenDecompose(s)
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqual(eig.Values, []float64{1, 3}, 1e-12) {
		t.Fatalf("Values = %v", eig.Values)
	}
}

func TestSymEigenReconstructionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		s := randomSymmetric(r, n)
		eig, err := SymEigenDecompose(s)
		if err != nil {
			return false
		}
		// V·diag(λ)·Vᵀ = S.
		recon := eig.Vectors.MulDiagRight(eig.Values).Mul(eig.Vectors.T())
		if !recon.Equal(s, 1e-9*math.Max(1, s.MaxAbs())) {
			return false
		}
		// V orthonormal.
		return eig.Vectors.T().Mul(eig.Vectors).Equal(Eye(n), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSymEigenNonSquare(t *testing.T) {
	if _, err := SymEigenDecompose(NewDense(2, 3)); err == nil {
		t.Fatal("expected error for non-square input")
	}
}

func TestSymmetrizableMatchesDirectProduct(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	d, m := randomRCStyle(r, 6)
	e, err := DecomposeSymmetrizable(d, m)
	if err != nil {
		t.Fatal(err)
	}
	// A = D⁻¹·M directly.
	invD := make([]float64, len(d))
	for i, v := range d {
		invD[i] = 1 / v
	}
	a := m.MulDiagLeft(invD)
	if !e.Matrix().Equal(a, 1e-9) {
		t.Fatal("reconstructed A != D⁻¹M")
	}
	if !e.Stable() {
		t.Fatal("RC-style matrix should be stable")
	}
	if e.SlowestTimeConstant() <= 0 {
		t.Fatal("time constant must be positive")
	}
}

func TestSymmetrizableExpMatchesPade(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		d, m := randomRCStyle(r, n)
		e, err := DecomposeSymmetrizable(d, m)
		if err != nil {
			return false
		}
		tval := r.Float64() * 3
		fast := e.ExpAt(tval)
		ref, err := ExpmScaled(e.Matrix(), tval)
		if err != nil {
			return false
		}
		return fast.Equal(ref, 1e-8*math.Max(1, ref.MaxAbs()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSymmetrizableVecPathsMatchMatrixPaths(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	d, m := randomRCStyle(r, 7)
	e, err := DecomposeSymmetrizable(d, m)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 7)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	tv := 0.37
	if !VecEqual(e.ExpAtVec(tv, x), e.ExpAt(tv).MulVec(x), 1e-10) {
		t.Fatal("ExpAtVec mismatch")
	}
	phi := Eye(7).SubM(e.ExpAt(tv)).MulVec(x)
	if !VecEqual(e.PhiVec(tv, x), phi, 1e-10) {
		t.Fatal("PhiVec mismatch")
	}
	tinf := make([]float64, 7)
	for i := range tinf {
		tinf[i] = r.NormFloat64()
	}
	want := VecAdd(e.ExpAt(tv).MulVec(x), phi2(e, tv, tinf))
	if !VecEqual(e.StepVec(tv, x, tinf), want, 1e-10) {
		t.Fatal("StepVec mismatch")
	}
}

func phi2(e *Symmetrizable, t float64, x []float64) []float64 {
	return Eye(e.N()).SubM(e.ExpAt(t)).MulVec(x)
}

func TestSymmetrizableErrors(t *testing.T) {
	if _, err := DecomposeSymmetrizable([]float64{1, 2}, NewDense(3, 3)); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
	if _, err := DecomposeSymmetrizable([]float64{1, -1}, NewDense(2, 2)); err == nil {
		t.Fatal("expected error for non-positive D")
	}
}

func TestDecayProperty(t *testing.T) {
	// e^{At}·x must shrink toward zero for a stable system as t grows
	// (Property 1 of the paper at the linear-algebra level).
	r := rand.New(rand.NewSource(11))
	d, m := randomRCStyle(r, 5)
	e, err := DecomposeSymmetrizable(d, m)
	if err != nil {
		t.Fatal(err)
	}
	x := VecFill(5, 10)
	tau := e.SlowestTimeConstant()
	prev := VecNormInf(x)
	for _, mult := range []float64{0.25, 0.5, 1, 2, 4, 8, 12} {
		cur := VecNormInf(e.ExpAtVec(mult*tau, x))
		if cur > prev+1e-9 {
			t.Fatalf("norm grew from %v to %v at t=%v·tau", prev, cur, mult)
		}
		prev = cur
	}
	if prev > 1e-3*VecNormInf(x) {
		t.Fatalf("state did not decay after 12 time constants: %v", prev)
	}
}
