package mat

import (
	"errors"
	"math"
)

// ErrNotSPD is returned when a Cholesky factorization meets a matrix that
// is not symmetric positive definite.
var ErrNotSPD = errors.New("mat: matrix is not symmetric positive definite")

// Cholesky holds the lower-triangular factor L of A = L·Lᵀ.
//
// The conductance-style matrices of this project (G − βE and its
// relatives) are symmetric positive definite by construction, so their
// steady-state solves can use this factorization: roughly half the work
// of LU, with guaranteed stability and a free SPD sanity check (the
// factorization fails exactly when the physical model is broken).
type Cholesky struct {
	l *Dense
}

// FactorizeCholesky computes the Cholesky factorization of the symmetric
// positive definite matrix a (only the lower triangle is read).
func FactorizeCholesky(a *Dense) (*Cholesky, error) {
	if !a.IsSquare() {
		return nil, errors.New("mat: Cholesky requires a square matrix")
	}
	n := a.rows
	l := NewDense(n, n)
	ld := l.data
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= ld[j*n+k] * ld[j*n+k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotSPD
		}
		ljj := math.Sqrt(d)
		ld[j*n+j] = ljj
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= ld[i*n+k] * ld[j*n+k]
			}
			ld[i*n+j] = s / ljj
		}
	}
	return &Cholesky{l: l}, nil
}

// SolveVec solves A·x = b.
func (c *Cholesky) SolveVec(b []float64) ([]float64, error) {
	n := c.l.rows
	if len(b) != n {
		return nil, errors.New("mat: Cholesky SolveVec dimension mismatch")
	}
	ld := c.l.data
	// Forward: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= ld[i*n+k] * y[k]
		}
		y[i] = s / ld[i*n+i]
	}
	// Backward: Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= ld[k*n+i] * y[k]
		}
		y[i] = s / ld[i*n+i]
	}
	return y, nil
}

// SolveMat solves A·X = B column by column.
func (c *Cholesky) SolveMat(b *Dense) (*Dense, error) {
	n := c.l.rows
	if b.rows != n {
		return nil, errors.New("mat: Cholesky SolveMat dimension mismatch")
	}
	out := NewDense(n, b.cols)
	col := make([]float64, n)
	for j := 0; j < b.cols; j++ {
		for i := 0; i < n; i++ {
			col[i] = b.data[i*b.cols+j]
		}
		x, err := c.SolveVec(col)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			out.data[i*out.cols+j] = x[i]
		}
	}
	return out, nil
}

// InverseSPD inverts a symmetric positive definite matrix via Cholesky.
func InverseSPD(a *Dense) (*Dense, error) {
	c, err := FactorizeCholesky(a)
	if err != nil {
		return nil, err
	}
	return c.SolveMat(Eye(a.rows))
}

// LogDet returns log(det A) = 2·Σ log L_ii, numerically robust for the
// tiny determinants long-time-constant thermal systems produce.
func (c *Cholesky) LogDet() float64 {
	n := c.l.rows
	var s float64
	for i := 0; i < n; i++ {
		s += math.Log(c.l.data[i*n+i])
	}
	return 2 * s
}
