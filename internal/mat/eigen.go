package mat

import (
	"errors"
	"math"
)

// Symmetrizable holds the eigendecomposition A = W·diag(Lambda)·W⁻¹ of a
// matrix of the form A = D⁻¹·M with D diagonal positive and M symmetric —
// exactly the structure of compact RC thermal models, where
// A = C⁻¹·(βI − G) with thermal capacitance matrix C (diagonal, positive)
// and symmetric conductance matrix G. Such matrices are similar to the
// symmetric matrix S = D^{-1/2}·M·D^{-1/2} and therefore have real
// eigenvalues and a well-conditioned eigenbasis.
//
// The decomposition makes e^{At} available in O(n²) per evaluation after an
// O(n³) setup, which is the workhorse of the thermal simulator (the paper's
// equations (3) and (4) evaluate e^{A·l} for many interval lengths l).
type Symmetrizable struct {
	n      int
	Lambda []float64 // real eigenvalues of A, ascending
	W      *Dense    // right eigenvectors (columns)
	Winv   *Dense    // W⁻¹ = Vᵀ·D^{1/2}, available in closed form
}

// DecomposeSymmetrizable eigendecomposes A = D⁻¹·M given the diagonal of D
// (all entries must be positive) and the symmetric matrix M.
func DecomposeSymmetrizable(dDiag []float64, m *Dense) (*Symmetrizable, error) {
	n := len(dDiag)
	if m.rows != n || m.cols != n {
		return nil, errors.New("mat: DecomposeSymmetrizable dimension mismatch")
	}
	sqrtD := make([]float64, n)
	invSqrtD := make([]float64, n)
	for i, d := range dDiag {
		if d <= 0 {
			return nil, errors.New("mat: DecomposeSymmetrizable requires positive diagonal D")
		}
		sqrtD[i] = math.Sqrt(d)
		invSqrtD[i] = 1 / sqrtD[i]
	}
	// S = D^{-1/2}·M·D^{-1/2}, symmetric.
	s := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s.Set(i, j, invSqrtD[i]*m.At(i, j)*invSqrtD[j])
		}
	}
	eig, err := SymEigenDecompose(s)
	if err != nil {
		return nil, err
	}
	// A = D^{-1/2}·S·D^{1/2}  ⇒  W = D^{-1/2}·V,  W⁻¹ = Vᵀ·D^{1/2}.
	w := eig.Vectors.MulDiagLeft(invSqrtD)
	winv := eig.Vectors.T().MulDiagRight(sqrtD)
	return &Symmetrizable{n: n, Lambda: eig.Values, W: w, Winv: winv}, nil
}

// N returns the dimension of the decomposed matrix.
func (e *Symmetrizable) N() int { return e.n }

// Matrix reconstructs A = W·diag(Lambda)·W⁻¹ (mainly for testing).
func (e *Symmetrizable) Matrix() *Dense {
	return e.W.MulDiagRight(e.Lambda).Mul(e.Winv)
}

// ExpAt returns e^{A·t} as a dense matrix.
func (e *Symmetrizable) ExpAt(t float64) *Dense {
	expL := make([]float64, e.n)
	for i, l := range e.Lambda {
		expL[i] = math.Exp(l * t)
	}
	return e.W.MulDiagRight(expL).Mul(e.Winv)
}

// ExpAtVec returns e^{A·t}·x without forming the full exponential:
// y = W·diag(e^{λt})·W⁻¹·x in O(n²).
func (e *Symmetrizable) ExpAtVec(t float64, x []float64) []float64 {
	y := e.Winv.MulVec(x)
	for i, l := range e.Lambda {
		y[i] *= math.Exp(l * t)
	}
	return e.W.MulVec(y)
}

// ExpLambda returns the diagonal propagator factors exp(λ_i·t) of e^{A·t}
// in the eigenbasis. The thermal Propagator cache stores these per
// interval length Δt; feeding them back through StepVecExp reproduces
// StepVec bit for bit.
func (e *Symmetrizable) ExpLambda(t float64) []float64 {
	expL := make([]float64, e.n)
	for i, l := range e.Lambda {
		expL[i] = math.Exp(l * t)
	}
	return expL
}

// StepVecExp is StepVec with the exponential factors expL = exp(λ·t)
// precomputed (see ExpLambda). The arithmetic — operand order included —
// matches StepVec exactly, so cached factors yield bit-identical states.
func (e *Symmetrizable) StepVecExp(expL, x, tInf []float64) []float64 {
	diff := VecSub(x, tInf)
	y := e.Winv.MulVec(diff)
	for i := range y {
		y[i] *= expL[i]
	}
	out := e.W.MulVec(y)
	return VecAddInPlace(out, tInf)
}

// StepVecExpTo is StepVecExp writing into dst, with diff and y as
// caller-owned scratch (each length n): the allocation-free form for the
// solvers' per-solve arenas. The arithmetic — VecSub, W⁻¹ product, factor
// scaling, W product, target add, in that operand order — matches
// StepVecExp exactly, so the states are bit-identical. dst may alias x
// (the diff is captured first); diff and y must alias nothing else.
func (e *Symmetrizable) StepVecExpTo(dst, diff, y, expL, x, tInf []float64) []float64 {
	for i := range x {
		diff[i] = x[i] - tInf[i]
	}
	e.Winv.MulVecTo(y, diff)
	for i := range y {
		y[i] *= expL[i]
	}
	e.W.MulVecTo(dst, y)
	for i := range dst {
		dst[i] += tInf[i]
	}
	return dst
}

// ExpLambdaTo writes the diagonal propagator factors exp(λ_i·t) into dst
// (see ExpLambda); values are bit-identical to the allocating form.
func (e *Symmetrizable) ExpLambdaTo(dst []float64, t float64) []float64 {
	for i, l := range e.Lambda {
		dst[i] = math.Exp(l * t)
	}
	return dst
}

// PhiVec returns (I − e^{A·t})·x in O(n²). This is the coefficient of the
// steady-state target T∞ in the transient solution (paper eq. (3)).
func (e *Symmetrizable) PhiVec(t float64, x []float64) []float64 {
	y := e.Winv.MulVec(x)
	for i, l := range e.Lambda {
		// Use expm1 for accuracy when λ·t is tiny: 1 − e^{λt} = −expm1(λt).
		y[i] *= -math.Expm1(l * t)
	}
	return e.W.MulVec(y)
}

// StepVec advances the state by one interval of length t toward the
// steady-state target tInf: returns e^{At}·x + (I − e^{At})·tInf.
// This is exactly paper eq. (3) for one state interval.
func (e *Symmetrizable) StepVec(t float64, x, tInf []float64) []float64 {
	// e^{At}x + (I−e^{At})tInf = tInf + e^{At}(x − tInf).
	diff := VecSub(x, tInf)
	y := e.Winv.MulVec(diff)
	for i, l := range e.Lambda {
		y[i] *= math.Exp(l * t)
	}
	out := e.W.MulVec(y)
	return VecAddInPlace(out, tInf)
}

// Stable reports whether all eigenvalues are strictly negative, i.e. the
// autonomous system dT/dt = A·T decays to zero (Property 1 prerequisite).
func (e *Symmetrizable) Stable() bool {
	for _, l := range e.Lambda {
		if l >= 0 {
			return false
		}
	}
	return true
}

// SlowestTimeConstant returns −1/λmax, the dominant time constant of the
// system (time to reach ≈63% of a step response). Panics if unstable.
func (e *Symmetrizable) SlowestTimeConstant() float64 {
	lmax := e.Lambda[e.n-1] // ascending order ⇒ last is the largest
	if lmax >= 0 {
		panic("mat: SlowestTimeConstant of an unstable system")
	}
	return -1 / lmax
}
