package mat

import (
	"fmt"
	"math"
)

// CSR is a compressed-sparse-row matrix. The HotSpot-style RC networks
// this repository builds are extremely sparse — each node couples only to
// its mesh neighbours, the layer above/below, and the sink — so the
// row-compressed form stores O(dim) values where Dense stores O(dim²),
// and a matrix-vector product costs O(nnz) instead of O(dim²).
//
// Column indices within a row are strictly increasing; explicit zeros are
// never stored. CSR values are immutable after construction, so a CSR is
// safe for concurrent reads.
type CSR struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	val        []float64
}

// NewCSRFromDense compresses d, dropping exact zeros. The numeric values
// are copied bit-for-bit — no scaling or reordering — so a CSR product
// agrees with the dense product up to summation order only.
func NewCSRFromDense(d *Dense) *CSR {
	r, c := d.Dims()
	a := &CSR{rows: r, cols: c, rowPtr: make([]int, r+1)}
	nnz := 0
	raw := d.RawData()
	for _, v := range raw {
		if v != 0 {
			nnz++
		}
	}
	a.colIdx = make([]int, 0, nnz)
	a.val = make([]float64, 0, nnz)
	for i := 0; i < r; i++ {
		row := raw[i*c : (i+1)*c]
		for j, v := range row {
			if v != 0 {
				a.colIdx = append(a.colIdx, j)
				a.val = append(a.val, v)
			}
		}
		a.rowPtr[i+1] = len(a.colIdx)
	}
	return a
}

// Dims returns the row and column counts.
func (a *CSR) Dims() (r, c int) { return a.rows, a.cols }

// NNZ returns the number of stored entries.
func (a *CSR) NNZ() int { return len(a.val) }

// At returns the element at row i, column j (0 when not stored). It is a
// binary search over the row — meant for tests and assembly checks, not
// for inner loops.
func (a *CSR) At(i, j int) float64 {
	lo, hi := a.rowPtr[i], a.rowPtr[i+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case a.colIdx[mid] == j:
			return a.val[mid]
		case a.colIdx[mid] < j:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return 0
}

// MulVecTo computes a·x into dst and returns dst. dst must not alias x.
func (a *CSR) MulVecTo(dst, x []float64) []float64 {
	if a.cols != len(x) {
		panic(fmt.Sprintf("mat: CSR MulVecTo dimension mismatch %d×%d · %d", a.rows, a.cols, len(x)))
	}
	if len(dst) != a.rows {
		panic(fmt.Sprintf("mat: CSR MulVecTo destination length %d, want %d", len(dst), a.rows))
	}
	for i := 0; i < a.rows; i++ {
		var s float64
		for p := a.rowPtr[i]; p < a.rowPtr[i+1]; p++ {
			s += a.val[p] * x[a.colIdx[p]]
		}
		dst[i] = s
	}
	return dst
}

// MulVec returns a·x as a new vector.
func (a *CSR) MulVec(x []float64) []float64 {
	return a.MulVecTo(make([]float64, a.rows), x)
}

// Norm1 returns the maximum absolute column sum.
func (a *CSR) Norm1() float64 {
	colSum := make([]float64, a.cols)
	for p, v := range a.val {
		colSum[a.colIdx[p]] += math.Abs(v)
	}
	var max float64
	for _, s := range colSum {
		if s > max {
			max = s
		}
	}
	return max
}

// norm1Shifted returns ‖a − μI‖₁ without materializing the shift (the
// matrix must be square). Used by the expm-action scaling selection;
// colSum is caller-provided scratch of length cols (contents ignored).
func (a *CSR) norm1Shifted(mu float64, colSum []float64) float64 {
	for i := range colSum {
		colSum[i] = 0
	}
	for i := 0; i < a.rows; i++ {
		sawDiag := false
		for p := a.rowPtr[i]; p < a.rowPtr[i+1]; p++ {
			j := a.colIdx[p]
			v := a.val[p]
			if j == i {
				v -= mu
				sawDiag = true
			}
			colSum[j] += math.Abs(v)
		}
		if !sawDiag {
			colSum[i] += math.Abs(mu)
		}
	}
	var max float64
	for _, s := range colSum {
		if s > max {
			max = s
		}
	}
	return max
}

// Trace returns the sum of the diagonal entries (square matrices).
func (a *CSR) Trace() float64 {
	if a.rows != a.cols {
		panic("mat: CSR Trace of a non-square matrix")
	}
	var t float64
	for i := 0; i < a.rows; i++ {
		t += a.At(i, i)
	}
	return t
}

// ToDense expands a back into a dense matrix (tests and debugging).
func (a *CSR) ToDense() *Dense {
	d := NewDense(a.rows, a.cols)
	for i := 0; i < a.rows; i++ {
		for p := a.rowPtr[i]; p < a.rowPtr[i+1]; p++ {
			d.Set(i, a.colIdx[p], a.val[p])
		}
	}
	return d
}
