package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSPD(r *rand.Rand, n int) *Dense {
	// A = Bᵀ·B + n·I is comfortably SPD.
	b := randomDense(r, n, n)
	a := b.T().Mul(b)
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	return a
}

func TestCholeskyHandComputed(t *testing.T) {
	// A = [[4,2],[2,3]] ⇒ L = [[2,0],[1,√2]].
	a := NewDenseData(2, 2, []float64{4, 2, 2, 3})
	c, err := FactorizeCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.l.At(0, 0)-2) > 1e-12 || math.Abs(c.l.At(1, 0)-1) > 1e-12 ||
		math.Abs(c.l.At(1, 1)-math.Sqrt2) > 1e-12 {
		t.Fatalf("L = %v", c.l)
	}
	x, err := c.SolveVec([]float64{8, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqual(a.MulVec(x), []float64{8, 7}, 1e-12) {
		t.Fatalf("solve wrong: %v", x)
	}
	// det = 4·3−4 = 8.
	if math.Abs(c.LogDet()-math.Log(8)) > 1e-12 {
		t.Fatalf("LogDet = %v", c.LogDet())
	}
}

func TestCholeskyRejectsNonSPD(t *testing.T) {
	if _, err := FactorizeCholesky(NewDenseData(2, 2, []float64{1, 2, 2, 1})); err != ErrNotSPD {
		t.Fatalf("indefinite matrix: err = %v", err)
	}
	if _, err := FactorizeCholesky(NewDense(2, 3)); err == nil {
		t.Fatal("non-square must error")
	}
	z := NewDense(2, 2) // singular (zero)
	if _, err := FactorizeCholesky(z); err != ErrNotSPD {
		t.Fatalf("singular matrix: err = %v", err)
	}
}

func TestCholeskySolveRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		a := randomSPD(r, n)
		c, err := FactorizeCholesky(a)
		if err != nil {
			return false
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := c.SolveVec(b)
		if err != nil {
			return false
		}
		return VecEqual(a.MulVec(x), b, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestCholeskyAgreesWithLU(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := randomSPD(r, 8)
	invC, err := InverseSPD(a)
	if err != nil {
		t.Fatal(err)
	}
	invLU, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if !invC.Equal(invLU, 1e-9) {
		t.Fatal("Cholesky inverse disagrees with LU inverse")
	}
	// LogDet agrees with the LU determinant.
	c, err := FactorizeCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	lu, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.LogDet()-math.Log(lu.Det())) > 1e-8 {
		t.Fatalf("LogDet %v vs LU %v", c.LogDet(), math.Log(lu.Det()))
	}
}

func TestCholeskySolveMatDimensions(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a := randomSPD(r, 4)
	c, err := FactorizeCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SolveMat(NewDense(3, 2)); err == nil {
		t.Fatal("dimension mismatch must error")
	}
	if _, err := c.SolveVec(make([]float64, 3)); err == nil {
		t.Fatal("vector mismatch must error")
	}
	b := randomDense(r, 4, 3)
	x, err := c.SolveMat(b)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Mul(x).Equal(b, 1e-9) {
		t.Fatal("A·X != B")
	}
}

func BenchmarkCholeskySolve19(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	a := randomSPD(r, 19)
	c, err := FactorizeCholesky(a)
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, 19)
	for i := range rhs {
		rhs[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.SolveVec(rhs); err != nil {
			b.Fatal(err)
		}
	}
}
