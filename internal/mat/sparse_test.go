package mat

import (
	"math"
	"math/rand"
	"testing"
)

// randSparseSPD builds a random sparse symmetric diagonally-dominant
// matrix (hence SPD) with roughly the band-plus-coupling structure of an
// RC conductance network.
func randSparseSPD(rng *rand.Rand, n int) *Dense {
	d := NewDense(n, n)
	for i := 0; i < n; i++ {
		// Couple to a few nearby nodes.
		for _, off := range []int{1, 2, 7} {
			j := i + off
			if j >= n {
				continue
			}
			if rng.Float64() < 0.7 {
				g := 0.1 + rng.Float64()
				d.Add(i, j, -g)
				d.Add(j, i, -g)
				d.Add(i, i, g)
				d.Add(j, j, g)
			}
		}
		// Ground leg keeps it strictly positive definite.
		d.Add(i, i, 0.05+rng.Float64())
	}
	return d
}

func TestCSRRoundTripAndOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 3, 17, 40} {
		d := randSparseSPD(rng, n)
		a := NewCSRFromDense(d)
		if r, c := a.Dims(); r != n || c != n {
			t.Fatalf("n=%d: Dims = %d×%d", n, r, c)
		}
		if !a.ToDense().Equal(d, 0) {
			t.Fatalf("n=%d: ToDense round-trip not exact", n)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if a.At(i, j) != d.At(i, j) {
					t.Fatalf("n=%d: At(%d,%d) = %v, want %v", n, i, j, a.At(i, j), d.At(i, j))
				}
			}
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := a.MulVec(x)
		want := d.MulVec(x)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-13*(1+math.Abs(want[i])) {
				t.Fatalf("n=%d: MulVec[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
		if g, w := a.Norm1(), d.Norm1(); math.Abs(g-w) > 1e-12*w {
			t.Fatalf("n=%d: Norm1 = %v, want %v", n, g, w)
		}
		var tr float64
		for i := 0; i < n; i++ {
			tr += d.At(i, i)
		}
		if g := a.Trace(); math.Abs(g-tr) > 1e-12*math.Abs(tr) {
			t.Fatalf("n=%d: Trace = %v, want %v", n, g, tr)
		}
	}
}

func TestCSRDropsZeros(t *testing.T) {
	d := NewDense(3, 3)
	d.Set(0, 0, 2)
	d.Set(2, 1, -1)
	a := NewCSRFromDense(d)
	if a.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", a.NNZ())
	}
	if a.At(1, 1) != 0 || a.At(0, 0) != 2 || a.At(2, 1) != -1 {
		t.Fatalf("unexpected entries: %v", a.ToDense())
	}
}

func TestSparseCholeskyMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 9, 25, 60} {
		d := randSparseSPD(rng, n)
		sp, err := FactorizeSparseCholesky(NewCSRFromDense(d))
		if err != nil {
			t.Fatalf("n=%d: sparse Cholesky failed: %v", n, err)
		}
		dc, err := FactorizeCholesky(d)
		if err != nil {
			t.Fatalf("n=%d: dense Cholesky failed: %v", n, err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want, err := dc.SolveVec(b)
		if err != nil {
			t.Fatalf("n=%d: dense solve failed: %v", n, err)
		}
		got := sp.SolveVec(b)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-10*(1+math.Abs(want[i])) {
				t.Fatalf("n=%d: solve[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
		// In-place and aliased forms agree bit-for-bit with SolveVec.
		dst := make([]float64, n)
		copy(dst, b)
		sp.SolveVecTo(dst, dst)
		for i := range dst {
			if dst[i] != got[i] {
				t.Fatalf("n=%d: aliased solve differs at %d", n, i)
			}
		}
		// Residual check: ‖A·x − b‖ small.
		r := d.MulVec(got)
		for i := range r {
			if math.Abs(r[i]-b[i]) > 1e-9 {
				t.Fatalf("n=%d: residual[%d] = %v", n, i, r[i]-b[i])
			}
		}
	}
}

func TestSparseCholeskyRejectsIndefinite(t *testing.T) {
	d := NewDense(2, 2)
	d.Set(0, 0, 1)
	d.Set(0, 1, 2)
	d.Set(1, 0, 2)
	d.Set(1, 1, 1) // eigenvalues 3, −1
	if _, err := FactorizeSparseCholesky(NewCSRFromDense(d)); err == nil {
		t.Fatal("factorized an indefinite matrix")
	}
}

// randStable builds a random sparse stable system matrix A = −D + N with
// small off-diagonal coupling, the shape the thermal models produce.
func randStable(rng *rand.Rand, n int) *Dense {
	d := randSparseSPD(rng, n)
	// A = −SPD scaled by random positive "capacitances".
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		ci := 0.5 + rng.Float64()
		for j := 0; j < n; j++ {
			a.Set(i, j, -d.At(i, j)/ci)
		}
	}
	return a
}

func TestExpActionMatchesDenseExpm(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ws := &ExpmvScratch{}
	for _, n := range []int{1, 4, 19, 48} {
		a := randStable(rng, n)
		sp := NewCSRFromDense(a)
		for _, tt := range []float64{1e-4, 0.02, 0.5, 3.0, 25.0} {
			e, err := ExpmScaled(a, tt)
			if err != nil {
				t.Fatalf("n=%d t=%v: ExpmScaled failed: %v", n, tt, err)
			}
			b := make([]float64, n)
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			want := e.MulVec(b)
			got := sp.ExpActionTo(make([]float64, n), tt, b, ws)
			scale := normInfVec(want) + normInfVec(b)
			for i := range got {
				if math.Abs(got[i]-want[i]) > 1e-10*(1+scale) {
					t.Fatalf("n=%d t=%v: expmv[%d] = %v, want %v (diff %.3g)",
						n, tt, i, got[i], want[i], got[i]-want[i])
				}
			}
		}
	}
}

func TestExpActionEdgeCases(t *testing.T) {
	// t = 0 is the identity.
	a := NewCSRFromDense(randStable(rand.New(rand.NewSource(4)), 6))
	b := []float64{1, -2, 3, -4, 5, -6}
	got := a.ExpActionTo(make([]float64, 6), 0, b, nil)
	for i := range got {
		if got[i] != b[i] {
			t.Fatalf("t=0: got[%d] = %v, want %v", i, got[i], b[i])
		}
	}
	// A = μI reduces to the scalar exponential.
	d := NewDense(3, 3)
	for i := 0; i < 3; i++ {
		d.Set(i, i, -2)
	}
	sc := NewCSRFromDense(d)
	x := []float64{1, 2, 3}
	got = sc.ExpActionTo(make([]float64, 3), 0.7, x, nil)
	for i := range got {
		want := math.Exp(-1.4) * x[i]
		if math.Abs(got[i]-want) > 1e-14 {
			t.Fatalf("scalar case: got[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestExpActionAllocFree(t *testing.T) {
	a := NewCSRFromDense(randStable(rand.New(rand.NewSource(5)), 30))
	b := make([]float64, 30)
	for i := range b {
		b[i] = float64(i) - 14.5
	}
	dst := make([]float64, 30)
	ws := &ExpmvScratch{}
	a.ExpActionTo(dst, 0.3, b, ws) // warm up scratch
	allocs := testing.AllocsPerRun(20, func() {
		a.ExpActionTo(dst, 0.3, b, ws)
	})
	if allocs != 0 {
		t.Fatalf("ExpActionTo allocates %v times per run after warm-up", allocs)
	}
}
