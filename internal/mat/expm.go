package mat

import (
	"errors"
	"math"
)

// Expm returns the matrix exponential e^{A} using the scaling-and-squaring
// method with a degree-13 Padé approximant (Higham 2005). It works for any
// real square matrix and serves as the reference implementation against
// which the fast eigendecomposition path (Symmetrizable.ExpAt) is
// cross-validated.
func Expm(a *Dense) (*Dense, error) {
	if !a.IsSquare() {
		return nil, errors.New("mat: Expm requires a square matrix")
	}
	n := a.rows

	// Padé-13 coefficients.
	b := [...]float64{
		64764752532480000, 32382376266240000, 7771770303897600,
		1187353796428800, 129060195264000, 10559470521600,
		670442572800, 33522128640, 1323241920,
		40840800, 960960, 16380, 182, 1,
	}
	// θ13: the largest ‖A‖₁ for which the degree-13 approximant meets
	// double-precision accuracy without scaling.
	const theta13 = 5.371920351148152

	norm := a.Norm1()
	s := 0
	work := a.Clone()
	if norm > theta13 {
		s = int(math.Ceil(math.Log2(norm / theta13)))
		work.Scale(math.Pow(2, float64(-s)))
	}

	a2 := work.Mul(work)
	a4 := a2.Mul(a2)
	a6 := a4.Mul(a2)

	// U = A·(A6·(b13·A6 + b11·A4 + b9·A2) + b7·A6 + b5·A4 + b3·A2 + b1·I)
	inner := a6.Clone().Scale(b[13]).
		AddScaledInPlace(b[11], a4).
		AddScaledInPlace(b[9], a2)
	u := a6.Mul(inner)
	u.AddScaledInPlace(b[7], a6).
		AddScaledInPlace(b[5], a4).
		AddScaledInPlace(b[3], a2).
		AddScaledInPlace(b[1], Eye(n))
	u = work.Mul(u)

	// V = A6·(b12·A6 + b10·A4 + b8·A2) + b6·A6 + b4·A4 + b2·A2 + b0·I
	inner = a6.Clone().Scale(b[12]).
		AddScaledInPlace(b[10], a4).
		AddScaledInPlace(b[8], a2)
	v := a6.Mul(inner)
	v.AddScaledInPlace(b[6], a6).
		AddScaledInPlace(b[4], a4).
		AddScaledInPlace(b[2], a2).
		AddScaledInPlace(b[0], Eye(n))

	// Solve (V − U)·R = (V + U).
	p := v.AddM(u)
	q := v.SubM(u)
	f, err := Factorize(q)
	if err != nil {
		return nil, err
	}
	r, err := f.SolveMat(p)
	if err != nil {
		return nil, err
	}

	// Undo scaling by repeated squaring.
	for i := 0; i < s; i++ {
		r = r.Mul(r)
	}
	return r, nil
}

// ExpmScaled returns e^{A·t} via Expm on the scaled matrix.
func ExpmScaled(a *Dense, t float64) (*Dense, error) {
	return Expm(a.Clone().Scale(t))
}
