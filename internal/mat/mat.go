// Package mat provides the dense linear algebra kernels used by the thermal
// model and schedulers: basic matrix/vector arithmetic, LU factorization,
// a cyclic Jacobi symmetric eigensolver, eigendecomposition of
// diagonally-symmetrizable matrices, and the matrix exponential (both a
// Padé scaling-and-squaring implementation and a fast eigendecomposition
// path).
//
// The package is deliberately self-contained (standard library only) and
// tuned for the small-to-medium dense systems that compact RC thermal
// models produce (tens of nodes), while remaining correct for larger ones.
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns an r×c zero matrix.
func NewDense(r, c int) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %d×%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewDenseData returns an r×c matrix backed by data (not copied).
// len(data) must equal r*c.
func NewDenseData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d does not match %d×%d", len(data), r, c))
	}
	return &Dense{rows: r, cols: c, data: data}
}

// Eye returns the n×n identity matrix.
func Eye(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// DiagOf returns the n×n diagonal matrix with the given diagonal entries.
func DiagOf(d []float64) *Dense {
	n := len(d)
	m := NewDense(n, n)
	for i, v := range d {
		m.data[i*n+i] = v
	}
	return m
}

// Dims returns the row and column counts.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Add adds v to the element at row i, column j.
func (m *Dense) Add(i, j int, v float64) { m.data[i*m.cols+j] += v }

// RawData exposes the backing slice (row-major). Mutating it mutates the
// matrix; callers that need isolation should Clone first.
func (m *Dense) RawData() []float64 { return m.data }

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Diag returns a copy of the main diagonal.
func (m *Dense) Diag() []float64 {
	n := m.rows
	if m.cols < n {
		n = m.cols
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = m.data[i*m.cols+i]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	d := make([]float64, len(m.data))
	copy(d, m.data)
	return &Dense{rows: m.rows, cols: m.cols, data: d}
}

// CopyFrom overwrites m with the contents of src (dimensions must match).
func (m *Dense) CopyFrom(src *Dense) {
	if m.rows != src.rows || m.cols != src.cols {
		panic("mat: CopyFrom dimension mismatch")
	}
	copy(m.data, src.data)
}

// Zero sets every element of m to zero.
func (m *Dense) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Scale multiplies every element of m by s in place and returns m.
func (m *Dense) Scale(s float64) *Dense {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// AddM returns m + b as a new matrix.
func (m *Dense) AddM(b *Dense) *Dense {
	checkSameDims(m, b, "AddM")
	out := m.Clone()
	for i, v := range b.data {
		out.data[i] += v
	}
	return out
}

// SubM returns m − b as a new matrix.
func (m *Dense) SubM(b *Dense) *Dense {
	checkSameDims(m, b, "SubM")
	out := m.Clone()
	for i, v := range b.data {
		out.data[i] -= v
	}
	return out
}

// AddInPlace adds b to m in place and returns m.
func (m *Dense) AddInPlace(b *Dense) *Dense {
	checkSameDims(m, b, "AddInPlace")
	for i, v := range b.data {
		m.data[i] += v
	}
	return m
}

// SubInPlace subtracts b from m in place and returns m.
func (m *Dense) SubInPlace(b *Dense) *Dense {
	checkSameDims(m, b, "SubInPlace")
	for i, v := range b.data {
		m.data[i] -= v
	}
	return m
}

// AddScaledInPlace adds s*b to m in place and returns m.
func (m *Dense) AddScaledInPlace(s float64, b *Dense) *Dense {
	checkSameDims(m, b, "AddScaledInPlace")
	for i, v := range b.data {
		m.data[i] += s * v
	}
	return m
}

// Mul returns the matrix product m·b as a new matrix.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %d×%d · %d×%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewDense(m.rows, b.cols)
	// ikj loop order for cache friendliness on row-major storage.
	for i := 0; i < m.rows; i++ {
		arow := m.data[i*m.cols : (i+1)*m.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bkj := range brow {
				orow[j] += aik * bkj
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·x as a new vector.
func (m *Dense) MulVec(x []float64) []float64 {
	if m.cols != len(x) {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch %d×%d · %d", m.rows, m.cols, len(x)))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// MulVecTo computes m·x into dst (len(dst) == rows) and returns dst. The
// arithmetic — accumulation order included — matches MulVec exactly, so
// the in-place form is bit-identical to the allocating one. dst must not
// alias x.
func (m *Dense) MulVecTo(dst, x []float64) []float64 {
	if m.cols != len(x) {
		panic(fmt.Sprintf("mat: MulVecTo dimension mismatch %d×%d · %d", m.rows, m.cols, len(x)))
	}
	if len(dst) != m.rows {
		panic(fmt.Sprintf("mat: MulVecTo destination length %d, want %d", len(dst), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
	return dst
}

// MulDiagLeft returns diag(d)·m as a new matrix (scales row i by d[i]).
func (m *Dense) MulDiagLeft(d []float64) *Dense {
	if len(d) != m.rows {
		panic("mat: MulDiagLeft dimension mismatch")
	}
	out := m.Clone()
	for i := 0; i < m.rows; i++ {
		row := out.data[i*out.cols : (i+1)*out.cols]
		for j := range row {
			row[j] *= d[i]
		}
	}
	return out
}

// MulDiagRight returns m·diag(d) as a new matrix (scales column j by d[j]).
func (m *Dense) MulDiagRight(d []float64) *Dense {
	if len(d) != m.cols {
		panic("mat: MulDiagRight dimension mismatch")
	}
	out := m.Clone()
	for i := 0; i < m.rows; i++ {
		row := out.data[i*out.cols : (i+1)*out.cols]
		for j := range row {
			row[j] *= d[j]
		}
	}
	return out
}

// Norm1 returns the maximum absolute column sum of m.
func (m *Dense) Norm1() float64 {
	var max float64
	for j := 0; j < m.cols; j++ {
		var s float64
		for i := 0; i < m.rows; i++ {
			s += math.Abs(m.data[i*m.cols+j])
		}
		if s > max {
			max = s
		}
	}
	return max
}

// NormInf returns the maximum absolute row sum of m.
func (m *Dense) NormInf() float64 {
	var max float64
	for i := 0; i < m.rows; i++ {
		var s float64
		for j := 0; j < m.cols; j++ {
			s += math.Abs(m.data[i*m.cols+j])
		}
		if s > max {
			max = s
		}
	}
	return max
}

// NormFrob returns the Frobenius norm of m.
func (m *Dense) NormFrob() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element of m.
func (m *Dense) MaxAbs() float64 {
	var max float64
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// IsSquare reports whether m is square.
func (m *Dense) IsSquare() bool { return m.rows == m.cols }

// Equal reports whether m and b have identical dimensions and all elements
// within tol of each other.
func (m *Dense) Equal(b *Dense, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders m for debugging.
func (m *Dense) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		sb.WriteString("[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteString(" ")
			}
			fmt.Fprintf(&sb, "% .6g", m.At(i, j))
		}
		sb.WriteString("]\n")
	}
	return sb.String()
}

func checkSameDims(a, b *Dense, op string) {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("mat: %s dimension mismatch %d×%d vs %d×%d", op, a.rows, a.cols, b.rows, b.cols))
	}
}
