package mat

import "math"

// Vector helpers. Vectors are plain []float64 throughout the project; these
// free functions keep the call sites terse and allocation-conscious.

// VecClone returns a copy of x.
func VecClone(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// VecAdd returns x + y as a new vector.
func VecAdd(x, y []float64) []float64 {
	checkSameLen(x, y)
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] + y[i]
	}
	return out
}

// VecSub returns x − y as a new vector.
func VecSub(x, y []float64) []float64 {
	checkSameLen(x, y)
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] - y[i]
	}
	return out
}

// VecAddInPlace adds y to x in place and returns x.
func VecAddInPlace(x, y []float64) []float64 {
	checkSameLen(x, y)
	for i := range x {
		x[i] += y[i]
	}
	return x
}

// VecScale returns s·x as a new vector.
func VecScale(s float64, x []float64) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		out[i] = s * x[i]
	}
	return out
}

// VecAXPY computes x += s·y in place and returns x.
func VecAXPY(x []float64, s float64, y []float64) []float64 {
	checkSameLen(x, y)
	for i := range x {
		x[i] += s * y[i]
	}
	return x
}

// VecDot returns the inner product of x and y.
func VecDot(x, y []float64) float64 {
	checkSameLen(x, y)
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// VecMax returns the largest element of x and its index.
// It panics on an empty vector.
func VecMax(x []float64) (float64, int) {
	if len(x) == 0 {
		panic("mat: VecMax of empty vector")
	}
	best, idx := x[0], 0
	for i, v := range x[1:] {
		if v > best {
			best, idx = v, i+1
		}
	}
	return best, idx
}

// VecMin returns the smallest element of x and its index.
// It panics on an empty vector.
func VecMin(x []float64) (float64, int) {
	if len(x) == 0 {
		panic("mat: VecMin of empty vector")
	}
	best, idx := x[0], 0
	for i, v := range x[1:] {
		if v < best {
			best, idx = v, i+1
		}
	}
	return best, idx
}

// VecSum returns the sum of the elements of x.
func VecSum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// VecNormInf returns the maximum absolute element of x.
func VecNormInf(x []float64) float64 {
	var max float64
	for _, v := range x {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// VecNorm2 returns the Euclidean norm of x.
func VecNorm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// VecEqual reports whether x and y have the same length and all elements
// within tol of each other.
func VecEqual(x, y []float64, tol float64) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if math.Abs(x[i]-y[i]) > tol {
			return false
		}
	}
	return true
}

// VecFill returns a length-n vector with every element set to v.
func VecFill(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// VecAllGE reports whether every element of x is ≥ every corresponding
// element of y (element-wise ≥, the paper's matrix comparison operator).
func VecAllGE(x, y []float64) bool {
	checkSameLen(x, y)
	for i := range x {
		if x[i] < y[i] {
			return false
		}
	}
	return true
}

func checkSameLen(x, y []float64) {
	if len(x) != len(y) {
		panic("mat: vector length mismatch")
	}
}
