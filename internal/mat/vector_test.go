package mat

import (
	"math"
	"testing"
)

func TestVecBasics(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if !VecEqual(VecAdd(x, y), []float64{5, 7, 9}, 0) {
		t.Fatal("VecAdd")
	}
	if !VecEqual(VecSub(y, x), []float64{3, 3, 3}, 0) {
		t.Fatal("VecSub")
	}
	if !VecEqual(VecScale(2, x), []float64{2, 4, 6}, 0) {
		t.Fatal("VecScale")
	}
	if VecDot(x, y) != 32 {
		t.Fatal("VecDot")
	}
	if VecSum(x) != 6 {
		t.Fatal("VecSum")
	}
	c := VecClone(x)
	c[0] = 99
	if x[0] == 99 {
		t.Fatal("VecClone shares storage")
	}
}

func TestVecInPlaceOps(t *testing.T) {
	x := []float64{1, 2}
	VecAddInPlace(x, []float64{10, 20})
	if !VecEqual(x, []float64{11, 22}, 0) {
		t.Fatal("VecAddInPlace")
	}
	VecAXPY(x, 2, []float64{1, 1})
	if !VecEqual(x, []float64{13, 24}, 0) {
		t.Fatal("VecAXPY")
	}
}

func TestVecMaxMin(t *testing.T) {
	v := []float64{3, -1, 7, 2}
	max, imax := VecMax(v)
	if max != 7 || imax != 2 {
		t.Fatalf("VecMax = %v@%d", max, imax)
	}
	min, imin := VecMin(v)
	if min != -1 || imin != 1 {
		t.Fatalf("VecMin = %v@%d", min, imin)
	}
}

func TestVecMaxEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty VecMax")
		}
	}()
	VecMax(nil)
}

func TestVecNorms(t *testing.T) {
	v := []float64{3, -4}
	if VecNormInf(v) != 4 {
		t.Fatal("VecNormInf")
	}
	if math.Abs(VecNorm2(v)-5) > 1e-15 {
		t.Fatal("VecNorm2")
	}
}

func TestVecFillAndAllGE(t *testing.T) {
	v := VecFill(3, 2.5)
	if !VecEqual(v, []float64{2.5, 2.5, 2.5}, 0) {
		t.Fatal("VecFill")
	}
	if !VecAllGE([]float64{2, 3}, []float64{2, 2}) {
		t.Fatal("VecAllGE should hold")
	}
	if VecAllGE([]float64{2, 1}, []float64{2, 2}) {
		t.Fatal("VecAllGE should fail")
	}
}

func TestVecLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	VecAdd([]float64{1}, []float64{1, 2})
}
