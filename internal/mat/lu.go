package mat

import (
	"errors"
	"math"
)

// ErrSingular is returned when a factorization or solve encounters a
// numerically singular matrix.
var ErrSingular = errors.New("mat: matrix is singular to working precision")

// LU holds an LU factorization with partial pivoting: P·A = L·U.
type LU struct {
	lu   *Dense // combined L (unit lower) and U (upper)
	piv  []int  // row permutation
	sign int    // permutation parity (+1/−1), used by Det
}

// Factorize computes the LU factorization of the square matrix a with
// partial pivoting. The input is not modified.
func Factorize(a *Dense) (*LU, error) {
	if !a.IsSquare() {
		return nil, errors.New("mat: Factorize requires a square matrix")
	}
	n := a.rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	d := lu.data
	for k := 0; k < n; k++ {
		// Find the pivot row.
		p := k
		max := math.Abs(d[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(d[i*n+k]); v > max {
				max, p = v, i
			}
		}
		if max == 0 {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				d[k*n+j], d[p*n+j] = d[p*n+j], d[k*n+j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivVal := d[k*n+k]
		for i := k + 1; i < n; i++ {
			m := d[i*n+k] / pivVal
			d[i*n+k] = m
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				d[i*n+j] -= m * d[k*n+j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// SolveVec solves A·x = b for x using the factorization.
func (f *LU) SolveVec(b []float64) ([]float64, error) {
	n := f.lu.rows
	if len(b) != n {
		return nil, errors.New("mat: SolveVec dimension mismatch")
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	d := f.lu.data
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		var s float64
		row := d[i*n : i*n+i]
		for j, v := range row {
			s += v * x[j]
		}
		x[i] -= s
	}
	// Back substitution with upper triangle.
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += d[i*n+j] * x[j]
		}
		x[i] = (x[i] - s) / d[i*n+i]
	}
	return x, nil
}

// SolveVecTo solves A·x = b into dst (len(dst) == n) and returns dst. The
// arithmetic — permutation, substitution order, and operand association —
// matches SolveVec exactly, so the in-place form is bit-identical to the
// allocating one. dst may alias b only when they are the same slice.
func (f *LU) SolveVecTo(dst, b []float64) ([]float64, error) {
	n := f.lu.rows
	if len(b) != n {
		return nil, errors.New("mat: SolveVecTo dimension mismatch")
	}
	if len(dst) != n {
		return nil, errors.New("mat: SolveVecTo destination length mismatch")
	}
	x := dst
	if &x[0] == &b[0] {
		// Permuting in place would read already-overwritten entries; route
		// through the allocating path for the rare aliased call.
		xa, err := f.SolveVec(b)
		if err != nil {
			return nil, err
		}
		copy(dst, xa)
		return dst, nil
	}
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	d := f.lu.data
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		var s float64
		row := d[i*n : i*n+i]
		for j, v := range row {
			s += v * x[j]
		}
		x[i] -= s
	}
	// Back substitution with upper triangle.
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += d[i*n+j] * x[j]
		}
		x[i] = (x[i] - s) / d[i*n+i]
	}
	return dst, nil
}

// SolveMat solves A·X = B column by column.
func (f *LU) SolveMat(b *Dense) (*Dense, error) {
	n := f.lu.rows
	if b.rows != n {
		return nil, errors.New("mat: SolveMat dimension mismatch")
	}
	out := NewDense(n, b.cols)
	col := make([]float64, n)
	for j := 0; j < b.cols; j++ {
		for i := 0; i < n; i++ {
			col[i] = b.data[i*b.cols+j]
		}
		x, err := f.SolveVec(col)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			out.data[i*out.cols+j] = x[i]
		}
	}
	return out, nil
}

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() float64 {
	n := f.lu.rows
	det := float64(f.sign)
	for i := 0; i < n; i++ {
		det *= f.lu.data[i*n+i]
	}
	return det
}

// Solve solves a·x = b for x. For repeated solves against the same matrix,
// Factorize once and reuse the LU.
func Solve(a *Dense, b []float64) ([]float64, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.SolveVec(b)
}

// Inverse returns the inverse of a.
func Inverse(a *Dense) (*Dense, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.SolveMat(Eye(a.rows))
}
