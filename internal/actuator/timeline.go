package actuator

import (
	"fmt"
	"math"
	"sort"
)

// Timeline replays a compiled command stream against wall-clock time: it
// answers "what voltage is core i programmed to at time t" for the
// periodic stream Compile emits, including the wrap-around semantics of
// periodic replay (before a core's first command of the period, the core
// holds the voltage of its last command — the value that wrapped around
// from the previous period). The fault-injection rig drives plan playback
// through a Timeline so the plant sees exactly the command stream a
// platform driver would program.
type Timeline struct {
	period  float64
	perCore [][]Command // per core, sorted by At ascending
}

// NewTimeline indexes a command stream (as produced by Compile) for
// point-in-time queries. Every core in [0, nCores) must receive at least
// one command, every offset must lie in [0, period), and the period must
// be positive and finite.
func NewTimeline(cmds []Command, period float64, nCores int) (*Timeline, error) {
	if period <= 0 || math.IsNaN(period) || math.IsInf(period, 0) {
		return nil, fmt.Errorf("actuator: invalid timeline period %v", period)
	}
	if nCores < 1 {
		return nil, fmt.Errorf("actuator: timeline needs at least one core, got %d", nCores)
	}
	perCore := make([][]Command, nCores)
	for _, c := range cmds {
		if c.Core < 0 || c.Core >= nCores {
			return nil, fmt.Errorf("actuator: command for core %d outside [0,%d)", c.Core, nCores)
		}
		if c.At < 0 || c.At >= period || math.IsNaN(c.At) {
			return nil, fmt.Errorf("actuator: command offset %v outside [0,%v)", c.At, period)
		}
		if c.Voltage < 0 || math.IsNaN(c.Voltage) || math.IsInf(c.Voltage, 0) {
			return nil, fmt.Errorf("actuator: invalid command voltage %v", c.Voltage)
		}
		perCore[c.Core] = append(perCore[c.Core], c)
	}
	for i, cs := range perCore {
		if len(cs) == 0 {
			return nil, fmt.Errorf("actuator: core %d has no commands", i)
		}
		sort.Slice(cs, func(a, b int) bool { return cs[a].At < cs[b].At })
	}
	return &Timeline{period: period, perCore: perCore}, nil
}

// Period returns the replay period in seconds.
func (tl *Timeline) Period() float64 { return tl.period }

// NumCores returns the number of cores the timeline programs.
func (tl *Timeline) NumCores() int { return len(tl.perCore) }

// VoltageAt returns core i's programmed voltage at time t ≥ 0 (t is
// wrapped into the period; a command takes effect exactly at its offset).
func (tl *Timeline) VoltageAt(i int, t float64) float64 {
	cs := tl.perCore[i]
	w := math.Mod(t, tl.period)
	if w < 0 {
		w += tl.period
	}
	// Last command with At ≤ w; before the first command the core holds
	// the last command of the previous period.
	idx := sort.Search(len(cs), func(k int) bool { return cs[k].At > w }) - 1
	if idx < 0 {
		idx = len(cs) - 1
	}
	return cs[idx].Voltage
}

// Voltages fills out (length NumCores) with every core's programmed
// voltage at time t.
func (tl *Timeline) Voltages(t float64, out []float64) {
	for i := range tl.perCore {
		out[i] = tl.VoltageAt(i, t)
	}
}
