package actuator

import (
	"math"
	"testing"

	"thermosc/internal/schedule"
)

func TestTimelineReplaysCompiledStream(t *testing.T) {
	s := schedule.Must([][]schedule.Segment{
		{seg(1, 0.6), seg(1, 1.3)}, // switches at 0 and at 1
		{seg(2, 0.8)},              // constant
	})
	tl, err := NewTimeline(Compile(s), s.Period(), s.NumCores())
	if err != nil {
		t.Fatal(err)
	}
	if tl.Period() != 2 || tl.NumCores() != 2 {
		t.Fatalf("period %v cores %d", tl.Period(), tl.NumCores())
	}
	cases := []struct {
		core int
		t    float64
		want float64
	}{
		{0, 0, 0.6},     // command takes effect exactly at its offset
		{0, 0.5, 0.6},   //
		{0, 1, 1.3},     // mid-period switch
		{0, 1.999, 1.3}, //
		{0, 2, 0.6},     // wrapped into the next period
		{0, 7.5, 1.3},   // many periods later
		{1, 0, 0.8},     // boot command
		{1, 1.7, 0.8},   // constant core never switches
		{1, 123.4, 0.8}, //
		{0, -0.5, 1.3},  // negative time wraps like the previous period
	}
	for _, tc := range cases {
		if got := tl.VoltageAt(tc.core, tc.t); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("VoltageAt(%d, %v) = %v, want %v", tc.core, tc.t, got, tc.want)
		}
	}
	out := make([]float64, 2)
	tl.Voltages(1.2, out)
	if out[0] != 1.3 || out[1] != 0.8 {
		t.Fatalf("Voltages(1.2) = %v", out)
	}
}

// A core whose first command sits mid-period must hold the WRAPPED value
// (its last command of the previous period) before that offset.
func TestTimelineWrapBeforeFirstCommand(t *testing.T) {
	cmds := []Command{{At: 0.5, Core: 0, Voltage: 1.0}, {At: 1.5, Core: 0, Voltage: 0.6}}
	tl, err := NewTimeline(cmds, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := tl.VoltageAt(0, 0.25); got != 0.6 {
		t.Fatalf("before first command want wrap to 0.6, got %v", got)
	}
	if got := tl.VoltageAt(0, 0.5); got != 1.0 {
		t.Fatalf("at first command want 1.0, got %v", got)
	}
}

func TestTimelineValidation(t *testing.T) {
	ok := []Command{{At: 0, Core: 0, Voltage: 1}}
	cases := []struct {
		name   string
		cmds   []Command
		period float64
		nCores int
	}{
		{"zero period", ok, 0, 1},
		{"negative period", ok, -1, 1},
		{"NaN period", ok, math.NaN(), 1},
		{"no cores", ok, 1, 0},
		{"core out of range", []Command{{At: 0, Core: 2, Voltage: 1}}, 1, 2},
		{"offset at period", []Command{{At: 1, Core: 0, Voltage: 1}}, 1, 1},
		{"negative offset", []Command{{At: -0.1, Core: 0, Voltage: 1}}, 1, 1},
		{"negative voltage", []Command{{At: 0, Core: 0, Voltage: -1}}, 1, 1},
		{"core without commands", ok, 1, 2},
		{"empty stream", nil, 1, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewTimeline(tc.cmds, tc.period, tc.nCores); err == nil {
				t.Fatalf("want error, got nil")
			}
		})
	}
}

// Unsorted command input must be indexed correctly regardless of order.
func TestTimelineSortsCommands(t *testing.T) {
	cmds := []Command{
		{At: 1.5, Core: 0, Voltage: 0.6},
		{At: 0, Core: 0, Voltage: 1.3},
		{At: 0.5, Core: 0, Voltage: 1.0},
	}
	tl, err := NewTimeline(cmds, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ t, want float64 }{
		{0, 1.3}, {0.4, 1.3}, {0.5, 1.0}, {1.4, 1.0}, {1.5, 0.6}, {1.9, 0.6},
	} {
		if got := tl.VoltageAt(0, tc.t); got != tc.want {
			t.Fatalf("VoltageAt(0, %v) = %v, want %v", tc.t, got, tc.want)
		}
	}
}
