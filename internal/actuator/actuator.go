// Package actuator bridges plans and hardware: it compiles a periodic
// schedule into the timed DVFS command stream a platform driver would
// program, and "executes" schedules against the exact thermal model with
// realistic transition behaviour — every voltage change stalls the core
// for τ while the rail settles, with the stall window burning power at
// the higher of the two voltages (the conservative convention).
//
// Its purpose is end-to-end honesty: the §V overhead accounting inside AO
// extends high intervals so the USEFUL work survives the stalls; Execute
// measures the work a schedule actually completes, so tests can hold the
// planner's claimed throughput against the executed number.
package actuator

import (
	"fmt"
	"math"
	"sort"

	"thermosc/internal/mat"
	"thermosc/internal/power"
	"thermosc/internal/rt"
	"thermosc/internal/schedule"
	"thermosc/internal/sim"
	"thermosc/internal/thermal"
)

// Command is one DVFS actuation: at offset At into the period, set core
// Core to Voltage (0 = power the core down).
type Command struct {
	At      float64
	Core    int
	Voltage float64
}

// Compile flattens one period of the schedule into the sorted command
// stream a driver replays every period. The stream includes the
// wrap-around command (at offset 0) when a core's last and first segments
// differ; cores that never switch contribute a single initial command.
func Compile(s *schedule.Schedule) []Command {
	var cmds []Command
	for i := 0; i < s.NumCores(); i++ {
		segs := s.CoreSegments(i)
		var acc float64
		prev := segs[len(segs)-1].Mode.Voltage // voltage arriving at the wrap
		for _, seg := range segs {
			if seg.Mode.Voltage != prev || acc == 0 && len(segs) == 1 {
				cmds = append(cmds, Command{At: acc, Core: i, Voltage: seg.Mode.Voltage})
			}
			prev = seg.Mode.Voltage
			acc += seg.Length
		}
		if len(segs) == 1 {
			// Ensure constant cores still appear once (programmed at boot).
			found := false
			for _, c := range cmds {
				if c.Core == i {
					found = true
					break
				}
			}
			if !found {
				cmds = append(cmds, Command{At: 0, Core: i, Voltage: segs[0].Mode.Voltage})
			}
		}
	}
	sort.Slice(cmds, func(a, b int) bool {
		if cmds[a].At != cmds[b].At {
			return cmds[a].At < cmds[b].At
		}
		return cmds[a].Core < cmds[b].Core
	})
	return cmds
}

// ExecReport summarizes an execution.
type ExecReport struct {
	// PlannedWork is the schedule's face-value work per period
	// (Σ speed·length over every segment — what the timeline claims with
	// free transitions).
	PlannedWork float64
	// ExecutedWork is the work actually completed per period once every
	// voltage change stalls the core for τ.
	ExecutedWork float64
	// StallTime[i] is core i's stalled seconds per period.
	StallTime []float64
	// Transitions counts voltage changes per period, all cores.
	Transitions int
	// PeakC is the stable-status peak of the executed power timeline
	// (stall windows burn at the higher voltage), absolute °C.
	PeakC float64
}

// ExecutedThroughput returns the chip-wide useful throughput actually
// achieved (eq. (5) over the executed work).
func (r *ExecReport) ExecutedThroughput(numCores int, period float64) float64 {
	return r.ExecutedWork / (float64(numCores) * period)
}

// buildExecuted derives the executed power timeline and its work/stall
// accounting: each segment whose voltage differs from its predecessor
// (cyclically) starts with a stall of length min(τ, segment length) — no
// work, power at the higher of the two voltages.
func buildExecuted(s *schedule.Schedule, o power.TransitionOverhead) (*schedule.Schedule, *ExecReport, error) {
	n := s.NumCores()
	rep := &ExecReport{StallTime: make([]float64, n)}
	powerCores := make([][]schedule.Segment, n)
	for i := 0; i < n; i++ {
		segs := s.CoreSegments(i)
		prevV := segs[len(segs)-1].Mode.Voltage
		var out []schedule.Segment
		for _, seg := range segs {
			v := seg.Mode.Voltage
			rep.PlannedWork += seg.Mode.Speed() * seg.Length
			if v != prevV && o.Tau > 0 {
				stall := math.Min(o.Tau, seg.Length)
				hot := math.Max(v, prevV)
				out = append(out, schedule.Segment{Length: stall, Mode: power.NewMode(hot)})
				if rest := seg.Length - stall; rest > 0 {
					out = append(out, schedule.Segment{Length: rest, Mode: seg.Mode})
				}
				rep.StallTime[i] += stall
				rep.Transitions++
				rep.ExecutedWork += seg.Mode.Speed() * (seg.Length - stall)
			} else {
				if v != prevV {
					rep.Transitions++
				}
				out = append(out, seg)
				rep.ExecutedWork += seg.Mode.Speed() * seg.Length
			}
			prevV = v
		}
		powerCores[i] = out
	}
	exec, err := schedule.New(powerCores)
	if err != nil {
		return nil, nil, fmt.Errorf("actuator: building executed timeline: %w", err)
	}
	return exec, rep, nil
}

// Execute runs one period of the schedule on the model with transition
// stalls of o.Tau seconds. It returns the work/stall accounting and the
// densely-verified stable peak of the executed (stall-augmented) power
// timeline.
func Execute(md *thermal.Model, s *schedule.Schedule, o power.TransitionOverhead) (*ExecReport, error) {
	if s.NumCores() != md.NumCores() {
		return nil, fmt.Errorf("actuator: schedule has %d cores, model %d", s.NumCores(), md.NumCores())
	}
	exec, rep, err := buildExecuted(s, o)
	if err != nil {
		return nil, err
	}
	stable, err := sim.NewStable(md, exec)
	if err != nil {
		return nil, err
	}
	peak, _, _ := stable.PeakDense(24)
	rep.PeakC = md.Absolute(peak)
	return rep, nil
}

// ExecutedSpeedProfiles returns each core's realized periodic SPEED
// profile under transition stalls: the first τ of every segment following
// a voltage change delivers zero work. This is the profile a job-level
// scheduler (rt.SimulateEDF) actually sees, as opposed to the POWER
// timeline Execute analyzes thermally.
func ExecutedSpeedProfiles(s *schedule.Schedule, o power.TransitionOverhead) ([][]rt.SpeedSeg, error) {
	n := s.NumCores()
	out := make([][]rt.SpeedSeg, n)
	for i := 0; i < n; i++ {
		segs := s.CoreSegments(i)
		prevV := segs[len(segs)-1].Mode.Voltage
		var prof []rt.SpeedSeg
		for _, seg := range segs {
			v := seg.Mode.Voltage
			if v != prevV && o.Tau > 0 {
				stall := math.Min(o.Tau, seg.Length)
				prof = append(prof, rt.SpeedSeg{Length: stall, Speed: 0})
				if rest := seg.Length - stall; rest > 0 {
					prof = append(prof, rt.SpeedSeg{Length: rest, Speed: seg.Mode.Speed()})
				}
			} else {
				prof = append(prof, rt.SpeedSeg{Length: seg.Length, Speed: seg.Mode.Speed()})
			}
			prevV = v
		}
		out[i] = prof
	}
	return out, nil
}

// Replay simulates nPeriods of the EXECUTED timeline from ambient and
// returns the hottest observed core temperature — a cold-start check that
// complements the stable-status peak in ExecReport.
func Replay(md *thermal.Model, s *schedule.Schedule, o power.TransitionOverhead, nPeriods int) (float64, error) {
	if s.NumCores() != md.NumCores() {
		return 0, fmt.Errorf("actuator: schedule has %d cores, model %d", s.NumCores(), md.NumCores())
	}
	exec, _, err := buildExecuted(s, o)
	if err != nil {
		return 0, err
	}
	tr := sim.Transient(md, exec, md.ZeroState(), nPeriods, 8)
	peak := math.Inf(-1)
	for _, state := range tr.Temps {
		if p, _ := mat.VecMax(md.CoreTemps(state)); p > peak {
			peak = p
		}
	}
	return md.Absolute(peak), nil
}
