package actuator

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"thermosc/internal/power"
	"thermosc/internal/schedule"
	"thermosc/internal/sim"
	"thermosc/internal/thermal"
)

// The certificate behind AO's overhead handling (solver.buildCycle):
// executing the EMITTED two-mode cycle (high extended by 2δ per cycle)
// turns the first τ of each low interval into a high-voltage window, and
// the resulting timeline is exactly a time-rotation of the THERMAL view
// (high extended by 2δ+τ). Stable-status peaks are rotation-invariant, so
// the two must agree to numerical precision. This test rebuilds both
// views from the same random spec and compares the actuator-executed peak
// against the thermal view's dense peak.
func TestExecutedEqualsRotatedThermalView(t *testing.T) {
	md, err := thermal.Default(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tau := []float64{5e-6, 50e-6, 200e-6}[r.Intn(3)]
		o := power.TransitionOverhead{Tau: tau}
		tc := 2e-3 + r.Float64()*8e-3

		emit := make([]schedule.TwoModeSpec, 3)
		thermalView := make([]schedule.TwoModeSpec, 3)
		for i := range emit {
			lo := 0.6
			hi := 1.0 + r.Float64()*0.3
			delta := o.Delta(hi, lo)
			overheadFrac := (2*delta + tau) / tc
			if overheadFrac > 0.7 {
				return true // unbuildable corner (cycle too short for τ); not this property's concern
			}
			// Keep the thermal ratio comfortably inside (0, 0.9].
			rh := 0.1 + r.Float64()*(0.9-overheadFrac-0.1)
			effT := rh + overheadFrac
			effE := rh + 2*delta/tc
			low, high := power.NewMode(lo), power.NewMode(hi)
			emit[i] = schedule.TwoModeSpec{Low: low, High: high, HighRatio: effE}
			thermalView[i] = schedule.TwoModeSpec{Low: low, High: high, HighRatio: effT}
		}
		emitSched, err := schedule.TwoMode(tc, emit)
		if err != nil {
			return false
		}
		thermalSched, err := schedule.TwoMode(tc, thermalView)
		if err != nil {
			return false
		}

		rep, err := Execute(md, emitSched, o)
		if err != nil {
			return false
		}
		st, err := sim.NewStable(md, thermalSched)
		if err != nil {
			return false
		}
		want, _, _ := st.PeakDense(24)
		// Both sides are dense-sampled at the same per-interval
		// resolution, but the rotation misaligns the sample grids by τ;
		// tolerance covers that sampling skew only.
		return math.Abs(md.Absolute(want)-rep.PeakC) < 2e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
