package actuator

import (
	"math"
	"testing"

	"thermosc/internal/power"
	"thermosc/internal/schedule"
	"thermosc/internal/solver"
	"thermosc/internal/thermal"
)

func seg(l, v float64) schedule.Segment {
	return schedule.Segment{Length: l, Mode: power.NewMode(v)}
}

func TestCompileCommandStream(t *testing.T) {
	s := schedule.Must([][]schedule.Segment{
		{seg(1, 0.6), seg(1, 1.3)}, // switches at 0 (wrap) and at 1
		{seg(2, 0.8)},              // constant
	})
	cmds := Compile(s)
	// Core 0: command at t=0 (1.3→0.6 wrap) and t=1 (0.6→1.3);
	// core 1: one boot command.
	if len(cmds) != 3 {
		t.Fatalf("commands = %v", cmds)
	}
	if cmds[0].At != 0 || cmds[0].Core != 0 || cmds[0].Voltage != 0.6 {
		t.Fatalf("first command %v", cmds[0])
	}
	if cmds[1].At != 0 || cmds[1].Core != 1 || cmds[1].Voltage != 0.8 {
		t.Fatalf("second command %v", cmds[1])
	}
	if cmds[2].At != 1 || cmds[2].Core != 0 || cmds[2].Voltage != 1.3 {
		t.Fatalf("third command %v", cmds[2])
	}
}

func TestExecuteAccountsStalls(t *testing.T) {
	md, err := thermal.Default(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	o := power.TransitionOverhead{Tau: 1e-3}
	s := schedule.Must([][]schedule.Segment{
		{seg(10e-3, 0.6), seg(10e-3, 1.3)},
		{seg(20e-3, 0.8)},
	})
	rep, err := Execute(md, s, o)
	if err != nil {
		t.Fatal(err)
	}
	// Core 0 pays 2 transitions (wrap + mid), each stalling 1 ms.
	if rep.Transitions != 2 {
		t.Fatalf("transitions = %d", rep.Transitions)
	}
	if math.Abs(rep.StallTime[0]-2e-3) > 1e-12 || rep.StallTime[1] != 0 {
		t.Fatalf("stall times %v", rep.StallTime)
	}
	// Lost work: 1 ms at 0.6 + 1 ms at 1.3 = 1.9e-3 work units.
	wantLost := 1e-3*0.6 + 1e-3*1.3
	if math.Abs((rep.PlannedWork-rep.ExecutedWork)-wantLost) > 1e-12 {
		t.Fatalf("lost work %v, want %v", rep.PlannedWork-rep.ExecutedWork, wantLost)
	}
	if rep.PeakC <= md.Package().AmbientC {
		t.Fatalf("peak %v", rep.PeakC)
	}
	thr := rep.ExecutedThroughput(2, s.Period())
	if thr <= 0 || thr >= rep.PlannedWork/(2*s.Period()) {
		t.Fatalf("executed throughput %v", thr)
	}
}

func TestExecuteZeroOverheadIsLossless(t *testing.T) {
	md, err := thermal.Default(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := schedule.Must([][]schedule.Segment{
		{seg(10e-3, 0.6), seg(10e-3, 1.3)},
		{seg(20e-3, 0.8)},
	})
	rep, err := Execute(md, s, power.TransitionOverhead{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ExecutedWork != rep.PlannedWork {
		t.Fatalf("free transitions must be lossless: %v vs %v", rep.ExecutedWork, rep.PlannedWork)
	}
	if rep.Transitions != 2 {
		t.Fatalf("transitions = %d", rep.Transitions)
	}
}

// The end-to-end honesty check: an AO plan, executed with the very stalls
// it budgeted for, completes at least its claimed useful throughput and
// stays under the threshold.
func TestAOPlanSurvivesExecution(t *testing.T) {
	md, err := thermal.Default(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := power.PaperLevels(2)
	if err != nil {
		t.Fatal(err)
	}
	o := power.DefaultOverhead()
	p := solver.Problem{Model: md, Levels: ls, TmaxC: 65, Overhead: o}
	ao, err := solver.AO(p)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Execute(md, ao.Schedule, o)
	if err != nil {
		t.Fatal(err)
	}
	executed := rep.ExecutedThroughput(3, ao.Schedule.Period())
	if executed < ao.Throughput-1e-6 {
		t.Fatalf("executed %v below claimed %v", executed, ao.Throughput)
	}
	// The paper's per-transition loss model is conservative; executing
	// should not overshoot the claim by more than the compensation slack.
	if executed > ao.Throughput*1.05 {
		t.Fatalf("executed %v implausibly above claimed %v", executed, ao.Throughput)
	}
	if rep.PeakC > 65+0.1 {
		t.Fatalf("executed peak %.3f violates the cap", rep.PeakC)
	}

	// A NAIVE plan (nominal ratios, no overhead extension) loses work.
	pNaive := p
	pNaive.Overhead = power.TransitionOverhead{}
	naive, err := solver.AO(pNaive)
	if err != nil {
		t.Fatal(err)
	}
	repNaive, err := Execute(md, naive.Schedule, o)
	if err != nil {
		t.Fatal(err)
	}
	execNaive := repNaive.ExecutedThroughput(3, naive.Schedule.Period())
	if execNaive >= naive.Throughput {
		t.Fatalf("unbudgeted stalls should cost work: %v vs claim %v", execNaive, naive.Throughput)
	}
}

// PCO's phase-shifted plans rely on the same rotation-invariance
// certificate; execute one and confirm it too stays within its budget.
func TestPCOPlanSurvivesExecution(t *testing.T) {
	md, err := thermal.Default(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := power.PaperLevels(2)
	if err != nil {
		t.Fatal(err)
	}
	o := power.DefaultOverhead()
	p := solver.Problem{Model: md, Levels: ls, TmaxC: 65, Overhead: o}
	pco, err := solver.PCO(p)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Execute(md, pco.Schedule, o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeakC > 65+0.1 {
		t.Fatalf("executed PCO peak %.3f violates the cap", rep.PeakC)
	}
	executed := rep.ExecutedThroughput(3, pco.Schedule.Period())
	if executed < pco.Throughput-1e-6 {
		t.Fatalf("executed %v below PCO claim %v", executed, pco.Throughput)
	}
}

func TestExecutedSpeedProfiles(t *testing.T) {
	s := schedule.Must([][]schedule.Segment{
		{seg(10e-3, 0.6), seg(10e-3, 1.3)},
		{seg(20e-3, 0.8)},
	})
	o := power.TransitionOverhead{Tau: 1e-3}
	profiles, err := ExecutedSpeedProfiles(s, o)
	if err != nil {
		t.Fatal(err)
	}
	// Core 0: [stall 1ms, 0.6 for 9ms, stall 1ms, 1.3 for 9ms].
	if len(profiles[0]) != 4 {
		t.Fatalf("core0 profile %v", profiles[0])
	}
	if profiles[0][0].Speed != 0 || profiles[0][0].Length != 1e-3 {
		t.Fatalf("first slice %v", profiles[0][0])
	}
	if profiles[0][1].Speed != 0.6 || math.Abs(profiles[0][1].Length-9e-3) > 1e-12 {
		t.Fatalf("second slice %v", profiles[0][1])
	}
	// Core 1 constant: single full-speed slice.
	if len(profiles[1]) != 1 || profiles[1][0].Speed != 0.8 {
		t.Fatalf("core1 profile %v", profiles[1])
	}
}

func TestReplayColdStartStaysUnderStablePeak(t *testing.T) {
	md, err := thermal.Default(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := schedule.Must([][]schedule.Segment{
		{seg(10e-3, 0.6), seg(10e-3, 1.3)},
		{seg(10e-3, 1.3), seg(10e-3, 0.6)},
	})
	o := power.TransitionOverhead{Tau: 100e-6}
	rep, err := Execute(md, s, o)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Replay(md, s, o, 50)
	if err != nil {
		t.Fatal(err)
	}
	if cold > rep.PeakC+0.1 {
		t.Fatalf("cold start %.3f exceeds stable peak %.3f", cold, rep.PeakC)
	}
}

func TestExecuteDimensionMismatch(t *testing.T) {
	md, err := thermal.Default(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := schedule.Must([][]schedule.Segment{{seg(1, 0.6)}})
	if _, err := Execute(md, s, power.TransitionOverhead{}); err == nil {
		t.Fatal("core count mismatch must error")
	}
	if _, err := Replay(md, s, power.TransitionOverhead{}, 1); err == nil {
		t.Fatal("core count mismatch must error")
	}
}
