package thermosc

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestServeChaos hammers the planning daemon with concurrent requests
// under tiny deadlines while a fault hook randomly panics inside the
// solver flight, and asserts the two invariants the resilience layer
// exists for:
//
//  1. the daemon never dies — every request gets an HTTP answer from
//     the allowed status set, and the server still serves cleanly after
//     the storm;
//  2. every 200 body carries a plan that passes the independent
//     verification oracle (Platform.Audit) at its request's threshold —
//     overload and injected faults may degrade plans, never unverify
//     them.
//
// The storm is seed-pinned. THERMOSC_CHAOS_REQUESTS scales the request
// count (CI runs a bigger storm than the default `go test`);
// THERMOSC_CHAOS_STATS names a file to dump the final /v1/stats
// snapshot into (uploaded as a CI artifact); THERMOSC_CHAOS_STORE
// selects the plan-store backend the storm writes through (mem, or
// file for the crash-safe append-only log — CI runs both).
func TestServeChaos(t *testing.T) {
	requests := 48
	if v := os.Getenv("THERMOSC_CHAOS_REQUESTS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad THERMOSC_CHAOS_REQUESTS %q", v)
		}
		requests = n
	}
	const clients = 8
	const panicRate = 0.2

	cfg := ServerConfig{
		PlanCacheSize:    16, // small enough to churn evictions
		DefaultTimeout:   150 * time.Millisecond,
		MaxTimeout:       time.Second,
		AuditEvery:       1,
		SolveConcurrency: 2,
		SolveQueue:       4,
		BreakerCooloff:   100 * time.Millisecond,
		// Batching stays on under fire: injected panics, sheds, and tiny
		// deadlines must compose with group dispatch without unverifying a
		// single served plan.
		BatchWindow: 2 * time.Millisecond,
	}
	// THERMOSC_CHAOS_STORE=file runs the storm over a single-node cluster
	// whose plan store is the append-only file backend, so every complete
	// plan rides the fsync'd Put path under fault injection.
	switch backend := os.Getenv("THERMOSC_CHAOS_STORE"); backend {
	case "", "mem":
	case "file":
		cfg.Cluster = &ClusterConfig{
			Self:         "http://chaos-local",
			StoreBackend: "file",
			StorePath:    filepath.Join(t.TempDir(), "chaos-planstore.log"),
		}
	default:
		t.Fatalf("bad THERMOSC_CHAOS_STORE %q (want mem or file)", backend)
	}
	srv := NewServer(cfg)
	var hookMu sync.Mutex
	var faultsArmed atomic.Bool
	faultsArmed.Store(true)
	hookRand := rand.New(rand.NewSource(7))
	srv.solveHook = func(Method) {
		if !faultsArmed.Load() {
			return
		}
		hookMu.Lock()
		boom := hookRand.Float64() < panicRate
		delay := time.Duration(hookRand.Intn(3)) * time.Millisecond
		hookMu.Unlock()
		time.Sleep(delay)
		if boom {
			panic("chaos: injected solver fault")
		}
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	// Platforms the storm draws from (small, so truncated solves still
	// churn quickly), plus an impossible threshold to exercise the typed
	// refusal under fire.
	type variant struct {
		rows, cols, levels int
		tmax               float64
	}
	variants := []variant{
		{2, 1, 3, 65}, {2, 1, 3, 55}, {2, 2, 2, 65}, {2, 2, 2, 45},
		{2, 1, 2, 36}, {2, 1, 3, 35.01}, // near/below any mode's steady state
	}
	timeouts := []float64{0.0005, 0.002, 0.01, 0} // 0 = server default
	methods := []string{"AO", "PCO", "LNS", "EXS", "Ideal"}
	plats := map[string]*Platform{}
	for _, v := range variants {
		key := fmt.Sprintf("%dx%d/%d", v.rows, v.cols, v.levels)
		if _, ok := plats[key]; !ok {
			p, err := New(v.rows, v.cols, WithPaperLevels(v.levels))
			if err != nil {
				t.Fatal(err)
			}
			plats[key] = p
		}
	}

	allowed := map[int]bool{200: true, 422: true, 429: true, 500: true, 503: true, 504: true}
	client := &http.Client{Timeout: 30 * time.Second}
	var wg sync.WaitGroup
	errCh := make(chan error, requests)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + c)))
			for i := 0; i < requests/clients; i++ {
				v := variants[rng.Intn(len(variants))]
				method := methods[rng.Intn(len(methods))]
				timeout := timeouts[rng.Intn(len(timeouts))]
				body := fmt.Sprintf(`{"platform":{"rows":%d,"cols":%d,"paper_levels":%d},"tmax_c":%g,"method":%q`,
					v.rows, v.cols, v.levels, v.tmax, method)
				if timeout > 0 {
					body += fmt.Sprintf(`,"timeout_s":%g`, timeout)
				}
				body += "}"

				resp, err := client.Post(ts.URL+"/v1/maximize", "application/json", strings.NewReader(body))
				if err != nil {
					errCh <- fmt.Errorf("transport error (daemon died?): %w", err)
					return
				}
				var mr MaximizeResponse
				decodeErr := json.NewDecoder(resp.Body).Decode(&mr)
				resp.Body.Close()
				if !allowed[resp.StatusCode] {
					errCh <- fmt.Errorf("status %d outside the allowed set for %s", resp.StatusCode, body)
					continue
				}
				if resp.StatusCode != 200 {
					continue
				}
				if decodeErr != nil {
					errCh <- fmt.Errorf("200 with undecodable body: %v", decodeErr)
					continue
				}
				var plan Plan
				if err := json.Unmarshal(mr.Plan, &plan); err != nil {
					errCh <- fmt.Errorf("200 with undecodable plan: %v", err)
					continue
				}
				if !plan.Feasible || plan.Throughput <= 0 {
					errCh <- fmt.Errorf("200 served a useless plan (feasible=%v tpt=%v) for %s",
						plan.Feasible, plan.Throughput, body)
					continue
				}
				plat := plats[fmt.Sprintf("%dx%d/%d", v.rows, v.cols, v.levels)]
				rep, err := plat.Audit(&plan, v.tmax)
				if err != nil {
					errCh <- fmt.Errorf("auditing served plan: %v", err)
					continue
				}
				if !rep.OK {
					errCh <- fmt.Errorf("served plan FAILS the oracle for %s: %s", body, rep)
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// The daemon must still be fully functional with the fault hook
	// disarmed (atomically — in-flight stale refreshes still read it).
	faultsArmed.Store(false)
	status, b := postJSON(t, ts.URL+"/v1/maximize", maximizeBody("AO"))
	if status != 200 {
		t.Fatalf("post-storm solve: status %d: %s", status, b)
	}
	if status, _ := getStatus(t, ts.URL+"/healthz"); status != 200 {
		t.Fatal("daemon unhealthy after the storm")
	}
	srv.waitAudits()
	srv.waitRefreshes()

	st := srv.Stats()
	t.Logf("chaos stats: %d sheds, %d panics recovered, %d degraded served, %d stale served, breaker %s (%d trips)",
		st.Resilience.ShedTotal, st.Resilience.PanicsRecovered, st.Resilience.DegradedServed,
		st.Resilience.StaleServed, st.Resilience.BreakerState, st.Resilience.BreakerTrips)
	if out := os.Getenv("THERMOSC_CHAOS_STATS"); out != "" {
		blob, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
