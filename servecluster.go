package thermosc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"thermosc/internal/cluster"
)

// This file is the fleet layer of the planning service: consistent-hash
// routing of canonical request keys across replicas, a replicated plan
// store layered UNDER the process-local LRU, a forwarding proxy so any
// replica answers any key, gossip-driven anti-entropy between peers,
// and the cluster status/sync/snapshot endpoints. See docs/CLUSTER.md.
//
// Serving layers for a /v1/maximize key, in order:
//
//  1. local LRU        — process-hot cache (source "local")
//  2. replicated store — gossip/snapshot-fed (source "local" for owned
//     keys, "peer" for entries that arrived from another replica)
//  3. forwarding proxy — key owned elsewhere: proxy the request to the
//     owner (source "forwarded")
//  4. local solve      — owned keys, and the re-route fallback when the
//     owner is unreachable (source "local")
//
// Only COMPLETE plans enter the replicated store: a complete plan is a
// deterministic function of its canonical key, so every replica stores
// byte-identical plans and cross-replica identity is a hard invariant
// the soak test asserts. Degraded plans are deadline-dependent and stay
// in the local LRU of the process that produced them.

// clusterHopHeader marks a request already forwarded once; the receiver
// must answer it itself (owner-solve), never re-forward — a two-node
// disagreement about ring membership must degrade to an extra solve,
// not a proxy loop.
const clusterHopHeader = "X-Thermosc-Cluster-Hop"

// Serve-source labels for the cluster counters and the response's
// `source` field.
const (
	serveSourceLocal     = "local"
	serveSourcePeer      = "peer"
	serveSourceForwarded = "forwarded"
)

// ClusterConfig joins a Server to a replica fleet. Zero value (or a nil
// pointer in ServerConfig) means single-process serving, byte-identical
// to previous releases.
type ClusterConfig struct {
	// Self is this replica's advertised base URL (scheme://host:port); it
	// is this node's name on the ring. Required — a config with peers but
	// no self is rejected.
	Self string
	// Peers are the other replicas' base URLs. The ring is the
	// deduplicated union of Self and Peers, so every replica derives the
	// same membership from its own flags.
	Peers []string
	// VirtualNodes is the per-node virtual point count on the ring
	// (default cluster.DefaultVirtualNodes).
	VirtualNodes int
	// SyncInterval is the anti-entropy gossip period; each tick syncs
	// with one peer round-robin. 0 disables the background loop (tests
	// drive rounds explicitly; a 3-node fleet converges within two
	// intervals of any write).
	SyncInterval time.Duration
	// StoreCap bounds the replicated plan store (default
	// cluster.DefaultStoreCap entries, FIFO eviction).
	StoreCap int
	// StoreBackend selects the replicated plan store implementation:
	// "mem" (default) or "file" (append-only durable log; see
	// cluster.FileStore). docs/CLUSTER.md has the trade-off matrix.
	StoreBackend string
	// StorePath is the log path for the "file" backend (required with
	// it, rejected otherwise).
	StorePath string
	// ForwardTimeout caps one proxied request to the owner replica
	// (default 30 s; the proxied request also inherits the client's own
	// deadline via context).
	ForwardTimeout time.Duration

	// ProbeInterval is the failure detector's dedicated /healthz probe
	// period. 0 (the default) disables the probe loop — the detector
	// still runs, fed by gossip and forward outcomes, so explicit-sync
	// tests see exactly the observations they inject. thermosc-serve
	// defaults the flag to 1s.
	ProbeInterval time.Duration
	// ProbeSeed pins the per-tick probe ordering (default 1).
	ProbeSeed int64
	// SuspectAfter / DeadAfter / RecoverAfter tune the detector's
	// state machine thresholds (defaults cluster.DefaultSuspectAfter /
	// DefaultDeadAfter / DefaultRecoverAfter).
	SuspectAfter int
	DeadAfter    int
	RecoverAfter int
	// HintCap bounds the per-peer hinted-handoff queue (default
	// cluster.DefaultHintCap keys; overflow drops oldest).
	HintCap int
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	c.Self = strings.TrimRight(c.Self, "/")
	peers := make([]string, 0, len(c.Peers))
	for _, p := range c.Peers {
		p = strings.TrimRight(p, "/")
		if p != "" && p != c.Self {
			peers = append(peers, p)
		}
	}
	c.Peers = peers
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = cluster.DefaultVirtualNodes
	}
	if c.StoreCap <= 0 {
		c.StoreCap = cluster.DefaultStoreCap
	}
	if c.StoreBackend == "" {
		c.StoreBackend = "mem"
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 30 * time.Second
	}
	if c.ProbeSeed == 0 {
		c.ProbeSeed = 1
	}
	if c.HintCap <= 0 {
		c.HintCap = cluster.DefaultHintCap
	}
	return c
}

// serveCluster is the Server's fleet state.
type serveCluster struct {
	cfg    ClusterConfig
	ring   *cluster.Ring
	store  cluster.PlanStore
	client *http.Client
	// health is the failure detector (health.go): every peer contact —
	// dedicated probe, gossip round, forward transport failure — feeds
	// it, and healthyOwner consults it to route around down peers.
	health *cluster.Detector
	// hints is the hinted-handoff queue: keys of complete plans whose
	// ring owner was down at write time, replayed when the detector
	// re-admits the owner.
	hints *cluster.HintQueue

	// Serve-source counters. The per-node invariant, pinned by tests:
	// servedLocal + servedPeer + servedForwarded == successful (200)
	// /v1/maximize responses this process produced.
	servedLocal     atomic.Uint64
	servedPeer      atomic.Uint64
	servedForwarded atomic.Uint64
	forwardFails    atomic.Uint64

	syncRounds   atomic.Uint64
	syncFails    atomic.Uint64
	entriesSent  atomic.Uint64
	entriesRecvd atomic.Uint64

	probesSent atomic.Uint64
	probeFails atomic.Uint64
	probeTicks atomic.Uint64

	// draining, when set, takes this replica out of the healthy ring
	// view (its own keys route to successors), reports "draining" on
	// /healthz so balancers and peer probes stop sending traffic, and
	// was preceded by a push of owned entries to their new owners. See
	// handleClusterDrain.
	draining atomic.Bool

	// rejectSync, when set, answers every inbound sync with 503 — the
	// partition lever fault-tolerance tests pull. Exported behavior, not
	// just a test hook: operators can partition a replica out of gossip
	// while debugging it (POST /v1/cluster/sync is the only write path
	// between replicas).
	rejectSync atomic.Bool

	mu       sync.Mutex
	peerIdx  int
	peerSeen map[string]peerSyncState

	stopOnce sync.Once
	stop     chan struct{}
	loops    sync.WaitGroup
}

type peerSyncState struct {
	at    time.Time
	err   string
	fails uint64
}

// newClusterStore builds the configured PlanStore backend.
func newClusterStore(cfg ClusterConfig) (cluster.PlanStore, error) {
	switch cfg.StoreBackend {
	case "mem":
		if cfg.StorePath != "" {
			return nil, fmt.Errorf("cluster: store path %q given but backend is %q", cfg.StorePath, cfg.StoreBackend)
		}
		return cluster.NewMemStore(cfg.StoreCap), nil
	case "file":
		if cfg.StorePath == "" {
			return nil, fmt.Errorf("cluster: the file store backend requires a store path")
		}
		return cluster.NewFileStore(cfg.StorePath, cfg.StoreCap)
	default:
		return nil, fmt.Errorf("cluster: unknown store backend %q (want mem or file)", cfg.StoreBackend)
	}
}

// newServeCluster validates and builds the fleet state; a nil return
// (with error) leaves the server single-process.
func newServeCluster(cfg ClusterConfig) (*serveCluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Self is required")
	}
	store, err := newClusterStore(cfg)
	if err != nil {
		return nil, err
	}
	c := &serveCluster{
		cfg:   cfg,
		ring:  cluster.NewRing(append([]string{cfg.Self}, cfg.Peers...), cfg.VirtualNodes),
		store: store,
		client: &http.Client{
			// Forwarding and gossip reuse connections to a handful of
			// peers; the transport's per-host idle pool must not throttle a
			// soak-scale request stream into TIME_WAIT churn. The dial and
			// TLS-handshake timeouts bound how long a connection ATTEMPT to
			// a dead peer can hold a goroutine — without them, a
			// blackholed peer accumulates dialing connections for the full
			// forward timeout each. No ResponseHeaderTimeout: a forwarded
			// cold solve legitimately takes seconds, and ForwardTimeout
			// already caps the whole exchange.
			Transport: &http.Transport{
				DialContext:         (&net.Dialer{Timeout: 2 * time.Second, KeepAlive: 15 * time.Second}).DialContext,
				TLSHandshakeTimeout: 2 * time.Second,
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 64,
				IdleConnTimeout:     30 * time.Second,
			},
		},
		health: cluster.NewDetector(cfg.Peers, cluster.DetectorConfig{
			SuspectAfter: cfg.SuspectAfter,
			DeadAfter:    cfg.DeadAfter,
			RecoverAfter: cfg.RecoverAfter,
		}),
		hints:    cluster.NewHintQueue(cfg.HintCap),
		peerSeen: make(map[string]peerSyncState, len(cfg.Peers)),
		stop:     make(chan struct{}),
	}
	return c, nil
}

// owner returns the replica owning a canonical plan key.
func (c *serveCluster) owner(planKey string) string { return c.ring.Owner(planKey) }

func (c *serveCluster) owns(planKey string) bool { return c.owner(planKey) == c.cfg.Self }

// downForRouting is the live-view predicate: a node is routed around
// when the detector holds it suspect/dead, or when it is this replica
// itself and draining (its keys belong to successors now).
func (c *serveCluster) downForRouting(node string) bool {
	if node == c.cfg.Self {
		return c.draining.Load()
	}
	return c.health.Down(node)
}

// healthyOwner returns the replica that should answer planKey in the
// LIVE view of the ring: the static owner unless the detector holds it
// down, in which case ownership falls clockwise to the next healthy
// successor — deterministically identical to removing the down nodes
// from the ring (see Ring.OwnerSkipping). With every node down the key
// is served locally: degrading to an extra solve is always safe.
func (c *serveCluster) healthyOwner(planKey string) string {
	o := c.ring.OwnerSkipping(planKey, c.downForRouting)
	if o == "" {
		return c.cfg.Self
	}
	return o
}

// observeHealth feeds one peer contact outcome into the failure
// detector; a transition back to alive triggers the hinted-handoff
// replay for that peer. Only probe/gossip paths report successes, so
// the (potentially slow) replay never runs inside a request handler.
func (c *serveCluster) observeHealth(peer string, ok bool, latency time.Duration) {
	state, transitioned := c.health.Observe(peer, ok, latency)
	if transitioned && state == cluster.StateAlive {
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ForwardTimeout)
		defer cancel()
		c.replayHints(ctx, peer)
	}
}

// replayHints pushes the queued missed writes to a re-admitted peer as
// push-only sync rounds. Keys whose entries were evicted are skipped
// (anti-entropy is the backstop); on a failed push the batch is
// requeued for the next recovery.
func (c *serveCluster) replayHints(ctx context.Context, peer string) {
	keys := c.hints.Take(peer)
	if len(keys) == 0 {
		return
	}
	entries := cluster.MissingEntries(c.store, keys)
	for len(entries) > 0 {
		batch := entries
		if len(batch) > cluster.MaxSyncEntries {
			batch = batch[:cluster.MaxSyncEntries]
		}
		if _, err := c.postSync(ctx, peer, cluster.SyncRequest{From: c.cfg.Self, Entries: batch}); err != nil {
			c.hints.Requeue(peer, keys)
			return
		}
		c.entriesSent.Add(uint64(len(batch)))
		entries = entries[len(batch):]
	}
}

// startLoops launches the background anti-entropy and health-probe
// loops (each a no-op without peers or with its interval unset).
func (c *serveCluster) startLoops() {
	if len(c.cfg.Peers) == 0 {
		return
	}
	if c.cfg.SyncInterval > 0 {
		c.loops.Add(1)
		go func() {
			defer c.loops.Done()
			t := time.NewTicker(c.cfg.SyncInterval)
			defer t.Stop()
			for {
				select {
				case <-c.stop:
					return
				case <-t.C:
					ctx, cancel := context.WithTimeout(context.Background(), c.cfg.SyncInterval*4+time.Second)
					c.syncTick(ctx)
					cancel()
				}
			}
		}()
	}
	if c.cfg.ProbeInterval > 0 {
		c.loops.Add(1)
		go func() {
			defer c.loops.Done()
			t := time.NewTicker(c.cfg.ProbeInterval)
			defer t.Stop()
			for {
				select {
				case <-c.stop:
					return
				case <-t.C:
					c.probeTick(context.Background())
				}
			}
		}()
	}
}

// syncTick runs one gossip tick: try peers in round-robin order until a
// round succeeds, visiting each peer at most once. The cursor advances
// past failing peers, so a persistently dead peer costs each tick one
// failed attempt but can never starve the healthy peers behind it in
// rotation (the starvation bug this replaces: one failing peer consumed
// every tick it rotated onto, halving effective sync frequency — and a
// single-peer view of a flapping fleet could stall entirely).
func (c *serveCluster) syncTick(ctx context.Context) {
	for range c.cfg.Peers {
		if c.syncNow(ctx, c.nextPeer()) == nil {
			return
		}
		if ctx.Err() != nil {
			return // tick budget exhausted; later peers get the next tick
		}
	}
}

// probeTick probes every peer's /healthz once, in a seed-pinned
// per-tick permutation (rand order prevents lockstep probe bursts
// across a fleet started together; the seed keeps a failing run
// replayable).
func (c *serveCluster) probeTick(ctx context.Context) {
	tick := c.probeTicks.Add(1)
	order := rand.New(rand.NewSource(c.cfg.ProbeSeed + int64(tick))).Perm(len(c.cfg.Peers))
	for _, i := range order {
		c.probeOne(ctx, c.cfg.Peers[i])
	}
}

// probeOne checks one peer's /healthz and feeds the detector. Any
// non-200 — including a draining peer's 503 — counts as a failure, so
// routing moves off a replica as soon as it signals unreadiness, not
// only when its socket dies.
func (c *serveCluster) probeOne(ctx context.Context, peer string) {
	timeout := c.cfg.ProbeInterval
	if timeout <= 0 || timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	c.probesSent.Add(1)
	start := time.Now()
	ok := false
	if hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/healthz", nil); err == nil {
		if hresp, err := c.client.Do(hreq); err == nil {
			_, _ = io.Copy(io.Discard, io.LimitReader(hresp.Body, 4<<10))
			hresp.Body.Close()
			ok = hresp.StatusCode == http.StatusOK
		}
	}
	if !ok {
		c.probeFails.Add(1)
	}
	c.observeHealth(peer, ok, time.Since(start))
}

func (c *serveCluster) stopLoops() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.loops.Wait()
}

// closeStore releases the plan store's resources (the file backend's
// log handle). Call after the gossip loop has stopped and in-flight
// requests have drained; reads keep working afterwards.
func (c *serveCluster) closeStore() error {
	if fs, ok := c.store.(*cluster.FileStore); ok {
		return fs.Close()
	}
	return nil
}

func (c *serveCluster) nextPeer() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.cfg.Peers[c.peerIdx%len(c.cfg.Peers)]
	c.peerIdx++
	return p
}

// syncNow runs one pull-push anti-entropy round against peer: send our
// digest, store what the peer has that we lack, push what it asked for.
// The round's outcome doubles as a failure-detector observation — every
// gossip tick is a free health probe.
func (c *serveCluster) syncNow(ctx context.Context, peer string) error {
	c.syncRounds.Add(1)
	roundStart := time.Now()
	err := c.syncRound(ctx, peer)
	c.observeHealth(peer, err == nil, time.Since(roundStart))
	c.mu.Lock()
	st := peerSyncState{at: time.Now(), fails: c.peerSeen[peer].fails}
	if err != nil {
		st.err = err.Error()
		st.fails++
	}
	c.peerSeen[peer] = st
	c.mu.Unlock()
	if err != nil {
		c.syncFails.Add(1)
	}
	return err
}

func (c *serveCluster) syncRound(ctx context.Context, peer string) error {
	resp, err := c.postSync(ctx, peer, cluster.SyncRequest{From: c.cfg.Self, Digest: c.store.Digest()})
	if err != nil {
		return err
	}
	for _, e := range resp.Entries {
		if c.store.Put(e) {
			c.entriesRecvd.Add(1)
		}
	}
	if len(resp.Want) == 0 {
		return nil
	}
	push := cluster.MissingEntries(c.store, resp.Want)
	if len(push) == 0 {
		return nil
	}
	if _, err := c.postSync(ctx, peer, cluster.SyncRequest{From: c.cfg.Self, Entries: push}); err != nil {
		return err
	}
	c.entriesSent.Add(uint64(len(push)))
	return nil
}

// maxSyncBodyBytes bounds one gossip message on the wire: the entry
// payloads dominate, so the cap mirrors the store's worst case rather
// than the 1 MiB request-body cap.
const maxSyncBodyBytes = 64 << 20

func (c *serveCluster) postSync(ctx context.Context, peer string, req cluster.SyncRequest) (cluster.SyncResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return cluster.SyncResponse{}, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/v1/cluster/sync", bytes.NewReader(body))
	if err != nil {
		return cluster.SyncResponse{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.client.Do(hreq)
	if err != nil {
		return cluster.SyncResponse{}, err
	}
	defer hresp.Body.Close()
	rb, err := io.ReadAll(io.LimitReader(hresp.Body, maxSyncBodyBytes))
	if err != nil {
		return cluster.SyncResponse{}, err
	}
	if hresp.StatusCode != http.StatusOK {
		return cluster.SyncResponse{}, fmt.Errorf("cluster: peer %s sync: HTTP %d", peer, hresp.StatusCode)
	}
	var resp cluster.SyncResponse
	if err := json.Unmarshal(rb, &resp); err != nil {
		return cluster.SyncResponse{}, fmt.Errorf("cluster: peer %s sync reply: %w", peer, err)
	}
	return resp, nil
}

// served increments one serve-source counter (helper for the handler).
func (c *serveCluster) served(source string) {
	switch source {
	case serveSourcePeer:
		c.servedPeer.Add(1)
	case serveSourceForwarded:
		c.servedForwarded.Add(1)
	default:
		c.servedLocal.Add(1)
	}
}

// statsSnapshot renders the cluster block of /v1/stats.
func (c *serveCluster) statsSnapshot() *ClusterStats {
	alive, suspect, dead := c.health.Counts()
	hs := c.hints.Stats()
	return &ClusterStats{
		Self:            c.cfg.Self,
		Nodes:           c.ring.Nodes(),
		ServedLocal:     c.servedLocal.Load(),
		ServedPeerFetch: c.servedPeer.Load(),
		ServedForwarded: c.servedForwarded.Load(),
		ForwardFailures: c.forwardFails.Load(),
		SyncRounds:      c.syncRounds.Load(),
		SyncFailures:    c.syncFails.Load(),
		EntriesSent:     c.entriesSent.Load(),
		EntriesReceived: c.entriesRecvd.Load(),
		StoreSize:       c.store.Len(),
		StoreCapacity:   c.store.Cap(),
		PeersAlive:      alive,
		PeersSuspect:    suspect,
		PeersDead:       dead,
		ProbesSent:      c.probesSent.Load(),
		ProbeFailures:   c.probeFails.Load(),
		HintsQueued:     hs.Queued,
		HintsDropped:    hs.Dropped,
		HintsReplayed:   hs.Replayed,
		HintBacklog:     hs.Backlog,
		Draining:        c.draining.Load(),
	}
}

// ---- Server integration ----------------------------------------------

// sourceLabel is the response's `source` field value: set only in
// cluster mode so single-process responses stay byte-stable against
// earlier releases.
func (s *Server) sourceLabel(source string) string {
	if s.cluster == nil {
		return ""
	}
	return source
}

// clusterServed counts one successful maximize serve against its
// source (no-op single-process).
func (s *Server) clusterServed(source string) {
	if s.cluster != nil {
		s.cluster.served(source)
	}
}

// clusterStoreGet consults the replicated store (layer 2). The entry is
// promoted into the local LRU so the next hit is layer 1.
func (s *Server) clusterStoreGet(planKey string) (cachedPlan, string, bool) {
	if s.cluster == nil {
		return cachedPlan{}, "", false
	}
	ce, ok := s.cluster.store.Get(planKey)
	if !ok {
		return cachedPlan{}, "", false
	}
	ent := cachedPlan{bytes: ce.Plan, born: time.Unix(0, ce.BornUnixNano)}
	s.plans.Put(planKey, ent)
	src := serveSourceLocal
	if !s.cluster.owns(planKey) {
		// The entry can only have arrived via gossip or a snapshot
		// restore — a peer fetch in effect.
		src = serveSourcePeer
	}
	return ent, src, true
}

// clusterStorePut replicates a freshly solved COMPLETE plan (no-op
// single-process or for degraded plans; see the file comment). If the
// key's ring owner is currently down, the write would otherwise reach
// it only via eventual anti-entropy — so the key is queued as a hint
// and replayed the moment the detector re-admits the owner.
func (s *Server) clusterStorePut(planKey string, ent cachedPlan) {
	if s.cluster == nil || ent.degraded {
		return
	}
	c := s.cluster
	c.store.Put(cluster.Entry{Key: planKey, Plan: ent.bytes, BornUnixNano: ent.born.UnixNano()})
	if owner := c.owner(planKey); owner != c.cfg.Self && c.health.Down(owner) {
		c.hints.Add(owner, planKey)
	}
}

// forwardMaximize proxies a request whose key another replica owns.
// It reports whether the request was fully answered; a transport
// failure returns false and the caller re-routes to a local solve (the
// ring's failure semantics: with the owner down, the remaining replicas
// keep serving every key). The owner's HTTP errors (4xx/429/5xx) are
// relayed verbatim — they are deterministic or backpressure answers,
// not reachability failures.
func (s *Server) forwardMaximize(w http.ResponseWriter, r *http.Request, body []byte, owner, planKey string, start time.Time, failed *bool) bool {
	ctx, cancel := context.WithTimeout(r.Context(), s.cluster.cfg.ForwardTimeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+"/v1/maximize", bytes.NewReader(body))
	if err != nil {
		s.cluster.forwardFails.Add(1)
		return false
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(clusterHopHeader, s.cluster.cfg.Self)
	hresp, err := s.cluster.client.Do(hreq)
	if err != nil {
		// A transport failure is also a detector observation: the next
		// request for this owner's keys re-routes via healthyOwner once
		// the failure streak crosses the suspect threshold, instead of
		// rediscovering the dead peer on every forward. HTTP errors below
		// are NOT observations — they are real answers from a live peer.
		s.cluster.forwardFails.Add(1)
		s.cluster.observeHealth(owner, false, 0)
		return false
	}
	defer hresp.Body.Close()
	rb, err := io.ReadAll(io.LimitReader(hresp.Body, maxSyncBodyBytes))
	if err != nil {
		s.cluster.forwardFails.Add(1)
		s.cluster.observeHealth(owner, false, 0)
		return false
	}
	if hresp.StatusCode != http.StatusOK {
		if ra := hresp.Header.Get("Retry-After"); ra != "" {
			w.Header().Set("Retry-After", ra)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(hresp.StatusCode)
		_, _ = w.Write(rb)
		return true
	}
	var mr MaximizeResponse
	if err := json.Unmarshal(rb, &mr); err != nil || len(mr.Plan) == 0 {
		s.cluster.forwardFails.Add(1)
		return false
	}
	if !mr.Degraded {
		ent := cachedPlan{bytes: mr.Plan, born: time.Now()}
		s.plans.Put(planKey, ent)
		s.clusterStorePut(planKey, ent)
	}
	s.clusterServed(serveSourceForwarded)
	*failed = false
	writeJSON(w, http.StatusOK, MaximizeResponse{
		Plan:           mr.Plan,
		Cached:         mr.Cached,
		Shared:         mr.Shared,
		Degraded:       mr.Degraded,
		DegradedReason: mr.DegradedReason,
		Stale:          mr.Stale,
		Key:            mr.Key,
		Source:         serveSourceForwarded,
		ElapsedS:       time.Since(start).Seconds(),
	})
	return true
}

// ---- HTTP endpoints ---------------------------------------------------

// ClusterStatus is the JSON schema of GET /v1/cluster.
type ClusterStatus struct {
	Self         string       `json:"self"`
	Nodes        []string     `json:"nodes"`
	VirtualNodes int          `json:"virtual_nodes"`
	Draining     bool         `json:"draining,omitempty"`
	Peers        []PeerStatus `json:"peers"`
	Counters     ClusterStats `json:"counters"`
	// Fleet aggregates the cluster counters across every reachable
	// replica (set only with ?fleet=1).
	Fleet *FleetStats `json:"fleet,omitempty"`
	// Timeline is the failure detector's bounded health-transition log
	// (set only with ?timeline=1) — the artifact the churn CI job
	// uploads.
	Timeline []cluster.HealthTransition `json:"timeline,omitempty"`
}

// PeerStatus reports the last anti-entropy contact with one peer plus
// its failure-detector view.
type PeerStatus struct {
	URL string `json:"url"`
	// LastSyncUnixS is the wall-clock time of the last attempted round
	// (0 = never attempted).
	LastSyncUnixS float64 `json:"last_sync_unix_s,omitempty"`
	// LastError is the last round's failure ("" = the last round
	// succeeded).
	LastError string `json:"last_error,omitempty"`
	// SyncFailures counts this peer's failed rounds since startup.
	SyncFailures uint64 `json:"sync_failures,omitempty"`

	// Health is the detector's state for this peer: alive / suspect /
	// dead. Recovering marks a dead peer inside its re-admission
	// probation window.
	Health     string `json:"health"`
	Recovering bool   `json:"recovering,omitempty"`
	// ConsecutiveFailures is the current failed-contact streak feeding
	// the state machine; HealthTransitions counts state changes since
	// startup.
	ConsecutiveFailures int    `json:"consecutive_failures,omitempty"`
	HealthTransitions   uint64 `json:"health_transitions"`
	// LastProbeUnixS / LastProbeLatencyS describe the most recent
	// health observation of any kind (probe, gossip, forward failure).
	LastProbeUnixS    float64 `json:"last_probe_unix_s,omitempty"`
	LastProbeLatencyS float64 `json:"last_probe_latency_s,omitempty"`
	// HintsPending counts queued hinted-handoff keys awaiting this
	// peer's recovery.
	HintsPending int `json:"hints_pending,omitempty"`
}

// FleetStats is the cluster-aggregated view: per-node serve-source
// counters summed across every replica that answered /v1/stats. Note
// one client request answered by forwarding is counted twice fleet-wide
// — once as "forwarded" at the proxy and once as "local" at the owner —
// so ServedLocal+ServedPeerFetch equals client-visible serves and
// ServedForwarded measures internal proxy traffic.
type FleetStats struct {
	Reachable       int            `json:"reachable"`
	Unreachable     []string       `json:"unreachable,omitempty"`
	ServedLocal     uint64         `json:"served_local"`
	ServedPeerFetch uint64         `json:"served_peer_fetch"`
	ServedForwarded uint64         `json:"served_forwarded"`
	ForwardFailures uint64         `json:"forward_failures"`
	SyncRounds      uint64         `json:"sync_rounds"`
	SyncFailures    uint64         `json:"sync_failures"`
	StoreSizes      map[string]int `json:"store_sizes"`
}

func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	c := s.cluster
	if c == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "clustering is not enabled", Code: "bad_request"})
		return
	}
	st := ClusterStatus{
		Self:         c.cfg.Self,
		Nodes:        c.ring.Nodes(),
		VirtualNodes: c.cfg.VirtualNodes,
		Draining:     c.draining.Load(),
		Counters:     *c.statsSnapshot(),
	}
	c.mu.Lock()
	for _, p := range c.cfg.Peers {
		ps := PeerStatus{URL: p}
		if seen, ok := c.peerSeen[p]; ok {
			ps.LastSyncUnixS = float64(seen.at.UnixNano()) / 1e9
			ps.LastError = seen.err
			ps.SyncFailures = seen.fails
		}
		st.Peers = append(st.Peers, ps)
	}
	c.mu.Unlock()
	for i := range st.Peers {
		ph := c.health.Health(st.Peers[i].URL)
		st.Peers[i].Health = ph.State
		st.Peers[i].Recovering = ph.Recovering
		st.Peers[i].ConsecutiveFailures = ph.ConsecFails
		st.Peers[i].HealthTransitions = ph.Transitions
		st.Peers[i].LastProbeUnixS = ph.LastProbeUnixS
		st.Peers[i].LastProbeLatencyS = ph.LastProbeLatencyS
		st.Peers[i].HintsPending = c.hints.Pending(st.Peers[i].URL)
	}
	if r.URL.Query().Get("fleet") != "" {
		st.Fleet = s.gatherFleet(r.Context())
	}
	if r.URL.Query().Get("timeline") != "" {
		st.Timeline = c.health.Timeline()
	}
	writeJSON(w, http.StatusOK, st)
}

// gatherFleet polls every peer's /v1/stats CONCURRENTLY — each poll
// under its own fetchPeerStats deadline — and sums the cluster counters
// with this node's own. The fan-out bounds the whole status call by the
// slowest single peer rather than the sum: one hung replica used to
// stall ?fleet=1 for peers × timeout.
func (s *Server) gatherFleet(ctx context.Context) *FleetStats {
	c := s.cluster
	fleet := &FleetStats{Reachable: 1, StoreSizes: map[string]int{c.cfg.Self: c.store.Len()}}
	add := func(cs *ClusterStats) {
		fleet.ServedLocal += cs.ServedLocal
		fleet.ServedPeerFetch += cs.ServedPeerFetch
		fleet.ServedForwarded += cs.ServedForwarded
		fleet.ForwardFailures += cs.ForwardFailures
		fleet.SyncRounds += cs.SyncRounds
		fleet.SyncFailures += cs.SyncFailures
	}
	add(c.statsSnapshot())
	type peerResult struct {
		cs   *ClusterStats
		size int
		err  error
	}
	results := make([]peerResult, len(c.cfg.Peers))
	var wg sync.WaitGroup
	for i, p := range c.cfg.Peers {
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			cs, size, err := c.fetchPeerStats(ctx, peer)
			results[i] = peerResult{cs: cs, size: size, err: err}
		}(i, p)
	}
	wg.Wait()
	for i, p := range c.cfg.Peers {
		if results[i].err != nil {
			fleet.Unreachable = append(fleet.Unreachable, p)
			continue
		}
		fleet.Reachable++
		fleet.StoreSizes[p] = results[i].size
		add(results[i].cs)
	}
	return fleet
}

// fleetStatsTimeout bounds one peer's ?fleet=1 stats poll; with the
// concurrent fan-out it also bounds the whole aggregation.
const fleetStatsTimeout = 3 * time.Second

func (c *serveCluster) fetchPeerStats(ctx context.Context, peer string) (*ClusterStats, int, error) {
	ctx, cancel := context.WithTimeout(ctx, fleetStatsTimeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/stats", nil)
	if err != nil {
		return nil, 0, err
	}
	hresp, err := c.client.Do(hreq)
	if err != nil {
		return nil, 0, err
	}
	defer hresp.Body.Close()
	rb, err := io.ReadAll(io.LimitReader(hresp.Body, maxBodyBytes))
	if err != nil || hresp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("cluster: peer %s stats: HTTP %d (%v)", peer, hresp.StatusCode, err)
	}
	var st ServerStats
	if err := json.Unmarshal(rb, &st); err != nil || st.Cluster == nil {
		return nil, 0, fmt.Errorf("cluster: peer %s stats: %v", peer, err)
	}
	return st.Cluster, st.Cluster.StoreSize, nil
}

func (s *Server) handleClusterSync(w http.ResponseWriter, r *http.Request) {
	c := s.cluster
	if c == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "clustering is not enabled", Code: "bad_request"})
		return
	}
	if c.rejectSync.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "sync rejected: replica is partitioned", Code: "partitioned"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSyncBodyBytes))
	if err != nil {
		writeError(w, badRequestf("reading sync body: %v", err))
		return
	}
	req, err := cluster.DecodeSyncRequest(body)
	if err != nil {
		writeError(w, badRequestf("%v", err))
		return
	}
	resp := cluster.HandleSync(c.store, req)
	c.entriesRecvd.Add(uint64(resp.Applied))
	c.entriesSent.Add(uint64(len(resp.Entries)))
	writeJSON(w, http.StatusOK, resp)
}

// handleClusterDrain is POST /v1/cluster/drain: flip this replica into
// the draining state (?off=1 rejoins). Draining (1) reports 503 on
// /healthz so balancers and peer probes take the replica out of
// rotation, (2) removes it from its own healthy ring view so its owned
// keys route to their successors, and (3) pushes its owned store
// entries to those successors so a rolling restart loses nothing.
// In-flight and straggler requests are still answered — refusing them
// would turn a graceful drain into client-visible errors.
func (s *Server) handleClusterDrain(w http.ResponseWriter, r *http.Request) {
	c := s.cluster
	if c == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "clustering is not enabled", Code: "bad_request"})
		return
	}
	if r.URL.Query().Get("off") != "" {
		c.draining.Store(false)
		writeJSON(w, http.StatusOK, map[string]any{"draining": false})
		return
	}
	c.draining.Store(true)
	ctx, cancel := context.WithTimeout(r.Context(), c.cfg.ForwardTimeout)
	defer cancel()
	pushed, targets, failures := c.drainPush(ctx)
	writeJSON(w, http.StatusOK, map[string]any{
		"draining":      true,
		"pushed":        pushed,
		"targets":       targets,
		"push_failures": failures,
	})
}

// drainPush hands this replica's owned entries to their live-view
// successors (draining already removed self from the view) as push-only
// sync rounds, one batch per target. Targets that fail stay covered by
// hinted handoff and anti-entropy.
func (c *serveCluster) drainPush(ctx context.Context) (pushed, targets, failures int) {
	byTarget := make(map[string][]cluster.Entry)
	for _, e := range c.store.Entries() {
		if c.owner(e.Key) != c.cfg.Self {
			continue
		}
		t := c.healthyOwner(e.Key)
		if t == c.cfg.Self {
			continue // no healthy successor; the entry stays local
		}
		byTarget[t] = append(byTarget[t], e)
	}
	for t, entries := range byTarget {
		targets++
		for len(entries) > 0 {
			batch := entries
			if len(batch) > cluster.MaxSyncEntries {
				batch = batch[:cluster.MaxSyncEntries]
			}
			if _, err := c.postSync(ctx, t, cluster.SyncRequest{From: c.cfg.Self, Entries: batch}); err != nil {
				failures++
				break
			}
			c.entriesSent.Add(uint64(len(batch)))
			pushed += len(batch)
			entries = entries[len(batch):]
		}
	}
	return pushed, targets, failures
}

func (s *Server) handleClusterSnapshot(w http.ResponseWriter, r *http.Request) {
	b, err := s.ClusterSnapshot()
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error(), Code: "bad_request"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b)
}

func (s *Server) handleClusterRestore(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "clustering is not enabled", Code: "bad_request"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSyncBodyBytes))
	if err != nil {
		writeError(w, badRequestf("reading snapshot body: %v", err))
		return
	}
	n, err := s.ClusterRestore(body)
	if err != nil {
		writeError(w, badRequestf("%v", err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"restored": n, "store_size": s.cluster.store.Len()})
}

// ClusterSnapshot exports the replicated plan store in the warm-export
// format (the body of GET /v1/cluster/snapshot; thermosc-serve's
// -warm-export writes it to disk on shutdown). Errors when clustering
// is disabled.
func (s *Server) ClusterSnapshot() ([]byte, error) {
	if s.cluster == nil {
		return nil, fmt.Errorf("thermosc: clustering is not enabled")
	}
	return cluster.EncodeSnapshot(s.cluster.store)
}

// ClusterRestore loads a warm-export snapshot into the replicated plan
// store (the body of POST /v1/cluster/restore; thermosc-serve's
// -warm-restore loads one at startup). Returns how many entries were
// newly added.
func (s *Server) ClusterRestore(snapshot []byte) (int, error) {
	if s.cluster == nil {
		return 0, fmt.Errorf("thermosc: clustering is not enabled")
	}
	return cluster.Restore(s.cluster.store, snapshot)
}

// CloseIdlePeerConnections drops the cluster HTTP client's pooled idle
// connections. Operational hook for in-process fleets (thermosc-load
// -cluster churn mode): after a replica restarts on the same address,
// stale pooled connections to its previous incarnation would each cost
// one failed request before the pool heals. No-op single-process.
func (s *Server) CloseIdlePeerConnections() {
	if s.cluster != nil {
		s.cluster.client.CloseIdleConnections()
	}
}

// SyncPeer runs one anti-entropy round against the given peer now
// (also what the background gossip loop does on its timer). Exposed for
// operational tooling and tests; errors when clustering is disabled.
func (s *Server) SyncPeer(ctx context.Context, peer string) error {
	if s.cluster == nil {
		return fmt.Errorf("thermosc: clustering is not enabled")
	}
	return s.cluster.syncNow(ctx, strings.TrimRight(peer, "/"))
}
