package thermosc

import (
	"context"
	"time"

	"thermosc/internal/solver"
)

// This file wires the solver-level batch scheduler (internal/solver's
// Batcher) into the serve path. Batching groups concurrent cold solves
// by canonical PLATFORM key — requests that share an RC model share the
// Propagator eigenbasis and period-operator caches (Theorem 5
// composition), so the group leases one sim.Engine: the group leader
// solves first, warming the steady-state and eigen-exponential caches,
// and every follower (different tmax/method on the same model) then
// hits them. Members with equal PLAN keys collapse onto one solve.
//
// Batching sits strictly INSIDE the resilience onion, in solvePlan's
// full-solve branch:
//
//	singleflight → admission → breaker → [batcher] → MaximizeResilient
//
// so a shed request never joins a batch (it was refused admission
// first), a breaker-open request never joins (it takes the safe-floor
// branch), and degraded/anytime semantics are untouched — members run
// the exact solve the unbatched path would run, under their own
// context, so plans stay byte-identical (the solvers are
// bit-reproducible at any engine cache state).

// BatchStats is the batch block of /v1/stats and /metrics (nil when
// batching is disabled, keeping the schema byte-stable).
type BatchStats struct {
	// GroupsFormed counts batch windows opened; Members the solves that
	// entered one; Coalesced the members that joined an already-open
	// group; Deduped the members served from another member's solve.
	GroupsFormed int64 `json:"groups_formed"`
	Members      int64 `json:"members"`
	Coalesced    int64 `json:"coalesced"`
	Deduped      int64 `json:"deduped"`
	// WindowWaitMeanMs / WindowWaitMaxMs describe the seal-wait latency
	// batching added to member solves.
	WindowWaitMeanMs float64 `json:"window_wait_mean_ms"`
	WindowWaitMaxMs  float64 `json:"window_wait_max_ms"`
	// EngineSteadyHitRatio / EngineExpHitRatio aggregate the shared
	// engines' Propagator cache hit ratios across the platform cache —
	// the quantity batching exists to raise.
	EngineSteadyHitRatio float64 `json:"engine_steady_hit_ratio"`
	EngineExpHitRatio    float64 `json:"engine_exp_hit_ratio"`
}

// newBatcher builds the server's batcher (nil = batching disabled).
func newBatcher(cfg ServerConfig) *solver.Batcher {
	if cfg.BatchWindow <= 0 {
		return nil
	}
	return solver.NewBatcher(solver.BatchConfig{Window: cfg.BatchWindow, MaxBatch: cfg.BatchMaxSize})
}

// solveFull runs the full (non-floor) solve for one admitted request,
// through the batcher when enabled. The work closure executes on this
// goroutine under this request's ctx either way; the batcher only
// schedules WHEN it runs relative to same-platform members.
func (s *Server) solveFull(ctx context.Context, planKey, platKey string, plat *Platform, req MaximizeRequest) (*Plan, error) {
	if s.batch == nil {
		return plat.MaximizeResilient(ctx, req.Method, req.TmaxC, s.cfg.Workers)
	}
	v, info, err := s.batch.Do(ctx, platKey, planKey, func() (any, error) {
		return plat.MaximizeResilient(ctx, req.Method, req.TmaxC, s.cfg.Workers)
	})
	if err != nil || v == nil {
		return nil, err
	}
	plan := v.(*Plan)
	if info.Deduped {
		// A deduped member shares the executing member's *Plan; solvePlan
		// mutates plan.Elapsed, so hand each member its own header copy
		// (the slice spine underneath is immutable once solved).
		cp := *plan
		plan = &cp
	}
	return plan, nil
}

// batchStatsSnapshot renders the batch block of /v1/stats.
func (s *Server) batchStatsSnapshot() *BatchStats {
	if s.batch == nil {
		return nil
	}
	c := s.batch.Stats()
	bs := &BatchStats{
		GroupsFormed:    c.GroupsFormed,
		Members:         c.Members,
		Coalesced:       c.Coalesced,
		Deduped:         c.Deduped,
		WindowWaitMaxMs: float64(c.WindowWaitMaxNs) / float64(time.Millisecond),
	}
	if c.Members > 0 {
		bs.WindowWaitMeanMs = float64(c.WindowWaitNs) / float64(c.Members) / float64(time.Millisecond)
	}
	var steadyHits, steadyMisses, expHits, expMisses int64
	s.platforms.Each(func(p *Platform) {
		eng := p.builtEngine()
		if eng == nil {
			return // never solved: no engine to report
		}
		ps := eng.Propagator().Stats()
		steadyHits += ps.SteadyHits
		steadyMisses += ps.SteadyMisses
		expHits += ps.ExpHits
		expMisses += ps.ExpMisses
	})
	if t := steadyHits + steadyMisses; t > 0 {
		bs.EngineSteadyHitRatio = float64(steadyHits) / float64(t)
	}
	if t := expHits + expMisses; t > 0 {
		bs.EngineExpHitRatio = float64(expHits) / float64(t)
	}
	return bs
}
