package thermosc

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// FuzzServeRequest fuzzes the /v1/maximize request decoder: arbitrary
// bytes must never panic, every rejection must be a 4xx requestError
// (malformed JSON, non-finite Tmax, oversized grids, junk fields), and
// any accepted request must canonicalize idempotently — re-encoding the
// normalized request and parsing it again must reproduce the same cache
// keys, or the plan cache would fragment.
func FuzzServeRequest(f *testing.F) {
	seeds := []string{
		`{"platform":{"rows":3,"cols":1,"paper_levels":3},"tmax_c":65,"method":"AO"}`,
		`{"platform":{"rows":2,"cols":2,"voltages":[0.6,0.9,1.3]},"tmax_c":70,"method":"pco","timeout_s":5}`,
		`{"platform":{"rows":1,"cols":1,"core_level":true},"tmax_c":80,"method":"EXS"}`,
		`{"platform":{"rows":2,"cols":1,"stack_layers":2},"tmax_c":65,"method":"LNS"}`,
		`{"platform":{"rows":2,"cols":1,"core_scales":[1,2]},"tmax_c":65,"method":"Ideal"}`,
		`{"platform":{"rows":2,"cols":1,"overhead_s":0},"tmax_c":65,"method":"AO"}`,
		`{"platform":{"rows":99,"cols":99},"tmax_c":65,"method":"AO"}`,
		`{"platform":{"rows":2,"cols":1},"tmax_c":1e999,"method":"AO"}`,
		`{"platform":{"rows":2,"cols":1},"tmax_c":NaN,"method":"AO"}`,
		`{"platform":{"rows":2,"cols":1},"tmax_c":65,"method":"AO","timeout_s":-1}`,
		`{"platform":{"rows":-1,"cols":1},"tmax_c":65,"method":"AO"}`,
		`{"platform":{"rows":2,"cols":1,"voltages":[0.6,1e308]},"tmax_c":65,"method":"AO"}`,
		`{"platform":{"rows":2,"cols":1,"period_s":-3},"tmax_c":65,"method":"AO"}`,
		`{"platform":{"rows":2,"cols":1,"ambient_c":-400},"tmax_c":65,"method":"AO"}`,
		`{"platform":{"rows":2,"cols":1,"period_s":5e-324},"tmax_c":65,"method":"AO"}`,
		`{"platform":{"rows":2,"cols":1,"period_s":1e-310},"tmax_c":65,"method":"AO"}`,
		`{"platform":{"rows":2,"cols":1,"voltages":[5e-324,1.0]},"tmax_c":65,"method":"AO"}`,
		`{"platform":{"rows":2,"cols":1,"core_edge_m":1e-300},"tmax_c":65,"method":"AO"}`,
		`{"platform":{"rows":2,"cols":1,"convection_r":4.9e-324},"tmax_c":65,"method":"AO"}`,
		`{"platform":{"rows":2,"cols":1,"ambient_c":35},"tmax_c":35.0001,"method":"AO"}`,
		`{"platform":{"rows":2,"cols":1},"tmax_c":65,"method":"AO","timeout_s":1e300}`,
		// Degraded-path seed: a timeout far below any solve time drives the
		// anytime fallback chain end to end when served.
		`{"platform":{"rows":3,"cols":3},"tmax_c":65,"method":"PCO","timeout_s":0.001}`,
		`{"platform":{"rows":2,"cols":1},"tmax_c":65,"method":"AO","timeout_s":1e999}`,
		`{"platform":{"rows":2,"cols":1,"period_s":1e999},"tmax_c":65,"method":"AO"}`,
		`{"unknown_field":1}`,
		`{"platform":`,
		`[]`,
		`null`,
		``,
		"\x00\xff\xfe",
		// Large-floorplan seeds: the sparse backend serves up to 256 cores,
		// so the decoder must canonicalize big meshes, stacks, and long
		// 1xN strips — and reject one past the cap.
		`{"platform":{"rows":16,"cols":16,"paper_levels":3},"tmax_c":70,"method":"AO"}`,
		`{"platform":{"rows":8,"cols":8,"stack_layers":4},"tmax_c":70,"method":"AO","timeout_s":2}`,
		`{"platform":{"rows":1,"cols":256},"tmax_c":70,"method":"AO"}`,
		`{"platform":{"rows":1,"cols":16,"stack_layers":16},"tmax_c":70,"method":"PCO"}`,
		`{"platform":{"rows":16,"cols":17},"tmax_c":70,"method":"AO"}`,
		// Heterogeneous-core-scale seeds, including the stacked layer-major
		// form and the large platform where convection_r 0 stays canonical
		// (auto-scaled package) while an explicit value pins the sink.
		`{"platform":{"rows":8,"cols":8,"stack_layers":4,"core_scales":[` +
			strings.Repeat("0.45,1.6,", 127) + `0.45,1.6]},"tmax_c":70,"method":"AO"}`,
		`{"platform":{"rows":2,"cols":2,"stack_layers":2,"core_scales":[1,1,1,1,2,2,2,2]},"tmax_c":65,"method":"AO"}`,
		`{"platform":{"rows":16,"cols":16,"convection_r":0.05},"tmax_c":70,"method":"AO"}`,
		`{"platform":{"rows":16,"cols":16,"core_scales":[1,2]},"tmax_c":70,"method":"AO"}`,
		// Degenerate meshes: single stacked layer (planar spelling),
		// zero-area and negative-area cores → 400, never a panic.
		`{"platform":{"rows":2,"cols":1,"stack_layers":1},"tmax_c":65,"method":"AO"}`,
		`{"platform":{"rows":1,"cols":1},"tmax_c":65,"method":"AO"}`,
		`{"platform":{"rows":2,"cols":1,"core_edge_m":-0.004},"tmax_c":65,"method":"AO"}`,
		`{"platform":{"rows":2,"cols":1,"core_edge_m":0},"tmax_c":65,"method":"AO"}`,
		`{"platform":{"rows":1,"cols":256,"core_scales":[` +
			strings.Repeat("0,", 255) + `0]},"tmax_c":70,"method":"AO"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	lim := serveLimits{maxCores: 256, maxVoltages: 64, maxTraceSamples: 1 << 17}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, planKey, platKey, err := parseMaximizeRequest(data, lim)
		if err != nil {
			var reqErr *requestError
			if !errors.As(err, &reqErr) {
				t.Fatalf("rejection is not a requestError: %T %v", err, err)
			}
			if reqErr.status < 400 || reqErr.status > 499 {
				t.Fatalf("rejection status %d is not a 4xx: %v", reqErr.status, err)
			}
			return
		}
		// Accepted: the canonical form must stay within the advertised caps…
		cores := req.Platform.Rows * req.Platform.Cols * req.Platform.StackLayers
		if cores < 1 || cores > lim.maxCores {
			t.Fatalf("accepted request with %d cores (cap %d)", cores, lim.maxCores)
		}
		if len(req.Platform.Voltages) == 0 || len(req.Platform.Voltages) > lim.maxVoltages {
			t.Fatalf("accepted request with %d canonical voltages", len(req.Platform.Voltages))
		}
		if planKey == "" || platKey == "" {
			t.Fatal("accepted request with empty cache keys")
		}
		// …and canonicalization must be idempotent: round-tripping the
		// normalized request reproduces the exact same keys.
		rt, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("re-encoding canonical request: %v", err)
		}
		req2, planKey2, platKey2, err := parseMaximizeRequest(rt, lim)
		if err != nil {
			t.Fatalf("canonical request re-rejected: %v\n%s", err, rt)
		}
		if planKey2 != planKey || platKey2 != platKey {
			t.Fatalf("canonicalization not idempotent:\n key  %q\n key' %q\n plat  %q\n plat' %q\n body %s",
				planKey, planKey2, platKey, platKey2, rt)
		}
		if req2.Method != req.Method || req2.TmaxC != req.TmaxC {
			t.Fatalf("round-trip changed the request: %+v vs %+v", req, req2)
		}
	})
}
